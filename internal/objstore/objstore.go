// Package objstore is a small S3-like object store served over HTTP: PUT,
// GET, DELETE and LIST on opaque keys, with per-request metering. The
// distributed training integration (internal/distml) uses it to run the
// paper's stateless synchronization pattern (Fig. 5, the (3n-2) transfers)
// over real sockets: workers upload gradients as objects, a designated
// worker aggregates, everyone re-pulls the model.
//
// The store is deliberately simple — a concurrency-safe map behind an
// http.Handler — but speaks enough of an object-store dialect (key
// hierarchy, list-by-prefix, conditional-free overwrite semantics) for a
// training loop to treat it like the real thing.
package objstore

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Server is the in-memory object store. It implements http.Handler; serve
// it with net/http or httptest.
type Server struct {
	mu      sync.RWMutex
	objects map[string][]byte

	// MaxObjectBytes rejects larger PUTs with 413 (DynamoDB-style item
	// limits); zero means unlimited.
	MaxObjectBytes int64

	puts, gets, deletes, lists atomic.Uint64
	bytesIn, bytesOut          atomic.Uint64
}

// NewServer returns an empty store.
func NewServer() *Server {
	return &Server{objects: make(map[string][]byte)}
}

// Stats reports cumulative request counters.
type Stats struct {
	Puts, Gets, Deletes, Lists uint64
	BytesIn, BytesOut          uint64
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Puts: s.puts.Load(), Gets: s.gets.Load(),
		Deletes: s.deletes.Load(), Lists: s.lists.Load(),
		BytesIn: s.bytesIn.Load(), BytesOut: s.bytesOut.Load(),
	}
}

// Len returns the number of stored objects.
func (s *Server) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// ServeHTTP implements the object dialect:
//
//	PUT    /<key>            store body under key
//	GET    /<key>            fetch object (404 when absent)
//	DELETE /<key>            remove object (idempotent)
//	GET    /?list=<prefix>   newline-separated keys with the prefix, sorted
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/")
	switch {
	case r.Method == http.MethodGet && key == "" && r.URL.Query().Has("list"):
		s.lists.Add(1)
		prefix := r.URL.Query().Get("list")
		s.mu.RLock()
		var keys []string
		for k := range s.objects {
			if strings.HasPrefix(k, prefix) {
				keys = append(keys, k)
			}
		}
		s.mu.RUnlock()
		sort.Strings(keys)
		body := strings.Join(keys, "\n")
		s.bytesOut.Add(uint64(len(body)))
		fmt.Fprint(w, body)

	case r.Method == http.MethodPut && key != "":
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if s.MaxObjectBytes > 0 && int64(len(body)) > s.MaxObjectBytes {
			http.Error(w, "object exceeds size limit", http.StatusRequestEntityTooLarge)
			return
		}
		s.puts.Add(1)
		s.bytesIn.Add(uint64(len(body)))
		s.mu.Lock()
		s.objects[key] = body
		s.mu.Unlock()
		w.WriteHeader(http.StatusOK)

	case r.Method == http.MethodGet && key != "":
		s.gets.Add(1)
		s.mu.RLock()
		body, ok := s.objects[key]
		s.mu.RUnlock()
		if !ok {
			http.Error(w, "no such key", http.StatusNotFound)
			return
		}
		s.bytesOut.Add(uint64(len(body)))
		w.Write(body)

	case r.Method == http.MethodDelete && key != "":
		s.deletes.Add(1)
		s.mu.Lock()
		delete(s.objects, key)
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)

	default:
		http.Error(w, "unsupported operation", http.StatusMethodNotAllowed)
	}
}

// Client talks to a Server over HTTP.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the store at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{base: strings.TrimSuffix(baseURL, "/"), http: &http.Client{}}
}

// Put stores data under key.
func (c *Client) Put(key string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, c.base+"/"+url.PathEscape(key), bytes.NewReader(data))
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("objstore: PUT %s: %s", key, resp.Status)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Get fetches the object under key; ErrNotFound-style absence is reported
// via ok=false with a nil error.
func (c *Client) Get(key string) (data []byte, ok bool, err error) {
	resp, err := c.http.Get(c.base + "/" + url.PathEscape(key))
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		body, err := io.ReadAll(resp.Body)
		return body, err == nil, err
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("objstore: GET %s: %s", key, resp.Status)
	}
}

// Delete removes key (idempotent).
func (c *Client) Delete(key string) error {
	req, err := http.NewRequest(http.MethodDelete, c.base+"/"+url.PathEscape(key), nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("objstore: DELETE %s: %s", key, resp.Status)
	}
	return nil
}

// List returns the sorted keys with the given prefix.
func (c *Client) List(prefix string) ([]string, error) {
	resp, err := c.http.Get(c.base + "/?list=" + url.QueryEscape(prefix))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("objstore: LIST %s: %s", prefix, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, nil
	}
	return strings.Split(string(body), "\n"), nil
}
