package fit

import "testing"

func BenchmarkFitInverseLinear(b *testing.B) {
	xs, ys := genInverseLinear(0.2, 1.0, 0.5, 0.02, 40, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(InverseLinear{}, xs, ys, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitPowerLaw(b *testing.B) {
	m := PowerLaw{}
	var xs, ys []float64
	for e := 1; e <= 40; e++ {
		xs = append(xs, float64(e))
		ys = append(ys, m.Eval([]float64{2, 0.7, 0.3}, float64(e)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(m, xs, ys, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
