// Distributed training over real sockets: run the paper's two parameter
// synchronization patterns (Fig. 5) with actual concurrent workers — the
// stateless pattern against a local HTTP object store and the
// parameter-server pattern against a local TCP server — and compare their
// request signatures.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"repro/internal/dataset"
	"repro/internal/distml"
	"repro/internal/ml"
	"repro/internal/objstore"
	"repro/internal/psnet"
	"repro/internal/sim"
)

func main() {
	data := dataset.GenerateBinary(sim.NewRand(7), dataset.GenConfig{
		Samples: 2000, Features: 16, NoiseFlip: 0.05,
	})
	cfg := distml.Config{
		Objective:   ml.Logistic{},
		Data:        data,
		Workers:     4,
		BatchPerWkr: 50,
		LR:          0.5,
		Epochs:      8,
		Seed:        7,
	}
	fmt.Printf("logistic regression, %d rows x %d features, %d workers, %d epochs\n\n",
		data.Rows, data.Cols, cfg.Workers, cfg.Epochs)

	// Pattern 1: stateless storage (S3-style object store over HTTP).
	// Every worker PUTs its gradient; worker 0 GETs them all, aggregates,
	// PUTs the model; everyone GETs the model back — (3n-2) data movements
	// plus polling.
	store := objstore.NewServer()
	ts := httptest.NewServer(store)
	defer ts.Close()
	objRes, err := distml.TrainObjectStore(cfg, objstore.NewClient(ts.URL))
	if err != nil {
		log.Fatal(err)
	}
	st := store.Stats()
	fmt.Println("stateless pattern (HTTP object store):")
	fmt.Printf("  rounds: %d   final loss: %.4f\n", objRes.Rounds, objRes.LossTrace[len(objRes.LossTrace)-1])
	fmt.Printf("  requests: %d PUTs, %d GETs (%.1f requests per round — the paper bills (10n+2))\n",
		st.Puts, st.Gets, float64(st.Puts+st.Gets)/float64(objRes.Rounds))
	fmt.Printf("  bytes: %d in, %d out\n\n", st.BytesIn, st.BytesOut)

	// Pattern 2: parameter server (VM-PS over TCP with gob). Each worker
	// pushes once and pulls once per round; the server aggregates locally —
	// (2n-2) data movements and no polling.
	ps, err := psnet.NewServer(cfg.Workers, cfg.LR)
	if err != nil {
		log.Fatal(err)
	}
	addr, err := ps.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ps.Close()
	psRes, err := distml.TrainParamServer(cfg, addr)
	if err != nil {
		log.Fatal(err)
	}
	pushes, pulls := ps.Stats()
	fmt.Println("parameter-server pattern (TCP + gob):")
	fmt.Printf("  rounds: %d   final loss: %.4f\n", psRes.Rounds, psRes.LossTrace[len(psRes.LossTrace)-1])
	fmt.Printf("  requests: %d pushes, %d pulls (%.1f per round)\n",
		pushes, pulls, float64(pushes+pulls)/float64(psRes.Rounds))

	fmt.Println("\nsame algorithm, same data — the storage service only changes who moves")
	fmt.Println("the bytes, which is exactly why CE-scaling treats it as a resource dimension.")
}
