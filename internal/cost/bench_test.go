package cost

import (
	"testing"

	"repro/internal/workload"
)

func BenchmarkEnumerate(b *testing.B) {
	m := NewModel(workload.MobileNet())
	g := DefaultGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := m.Enumerate(g); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkEnumerateSerial(b *testing.B) {
	m := NewModel(workload.MobileNet())
	g := DefaultGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := m.enumerateSerial(g); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// denseGrid is a profiler-scale allocation space (every n from 2 to 200,
// every Lambda memory step): the workload the worker pool is for.
func denseGrid() Grid {
	g := Grid{Storages: DefaultGrid().Storages}
	for n := 2; n <= 200; n++ {
		g.Ns = append(g.Ns, n)
	}
	for mem := 128; mem <= 10240; mem += 64 {
		g.MemsMB = append(g.MemsMB, mem)
	}
	return g
}

func BenchmarkEnumerateDense(b *testing.B) {
	m := NewModel(workload.MobileNet())
	g := denseGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := m.Enumerate(g); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkEnumerateDenseSerial(b *testing.B) {
	m := NewModel(workload.MobileNet())
	g := denseGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := m.enumerateSerial(g); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkPareto(b *testing.B) {
	m := NewModel(workload.MobileNet())
	pts := m.Enumerate(DefaultGrid())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if front := Pareto(pts); len(front) == 0 {
			b.Fatal("no front")
		}
	}
}
