// Package importboundarytest seeds layering violations for the
// importboundary analyzer's golden test: it is linted under a virtual
// deterministic import path that is not in the policy's output set.
package importboundarytest

import (
	"fmt"
	"net/url"               // finding: net/* import
	"os"                    // finding: os import
	"repro/internal/lambda" // finding: live-substrate import
)

// Bad reaches the host from a deterministic package.
func Bad(u string) error {
	parsed, err := url.Parse(u)
	if err != nil {
		return err
	}
	fmt.Println(parsed.Host)                          // finding: fmt.Println writes stdout
	fmt.Fprintf(os.Stderr, "host: %v\n", parsed.Host) // finding: os.Stderr
	_ = lambda.Context{}
	return nil
}

// Legal formats into a value and lets the caller print.
func Legal(name string) string {
	return fmt.Sprintf("job %s", name)
}
