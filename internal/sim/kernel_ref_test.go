package sim

// A test-only reference implementation of the event queue on top of
// container/heap, preserving the kernel's pre-optimization semantics. The
// equivalence test drives the optimized kernel and this reference through
// an identical randomized workload (schedules, cancellations, nested
// scheduling) and asserts byte-identical firing traces, EventsFired counts
// and final clocks.

import (
	"container/heap"
	"fmt"
	"math"
	"testing"
)

type refEvent struct {
	at       Time
	priority int
	seq      uint64
	fn       func()
	canceled bool
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].priority != q[j].priority {
		return q[i].priority < q[j].priority
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(*refEvent)) }
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

type refSim struct {
	now   Time
	queue refQueue
	seq   uint64
	fired uint64
}

func (s *refSim) schedule(at Time, priority int, fn func()) *refEvent {
	e := &refEvent{at: at, priority: priority, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

func (s *refSim) run() {
	for len(s.queue) > 0 {
		next := heap.Pop(&s.queue).(*refEvent)
		if next.canceled {
			continue
		}
		s.now = next.at
		s.fired++
		next.fn()
	}
}

// kernelDriver abstracts the two implementations so one workload generator
// drives both.
type kernelDriver interface {
	schedulePri(at Time, priority int, fn func())
	cancelLast()
	run()
	clock() Time
	firedCount() uint64
}

type optDriver struct {
	s    *Simulation
	last Event // zero handle is inert, so cancelLast needs no guard
}

func (d *optDriver) schedulePri(at Time, priority int, fn func()) {
	d.last = d.s.SchedulePriority(at, priority, fn)
}
func (d *optDriver) cancelLast() {
	d.last.Cancel()
	d.last = Event{}
}
func (d *optDriver) run()               { d.s.Run() }
func (d *optDriver) clock() Time        { return d.s.Now() }
func (d *optDriver) firedCount() uint64 { return d.s.EventsFired() }

type refDriver struct {
	s    *refSim
	last *refEvent
}

func (d *refDriver) schedulePri(at Time, priority int, fn func()) {
	d.last = d.s.schedule(at, priority, fn)
}
func (d *refDriver) cancelLast() {
	if d.last != nil {
		d.last.canceled = true
		d.last = nil
	}
}
func (d *refDriver) run()               { d.s.run() }
func (d *refDriver) clock() Time        { return d.s.now }
func (d *refDriver) firedCount() uint64 { return d.s.fired }

// driveWorkload runs a deterministic pseudo-random event storm on the given
// kernel: a set of roots each spawning chains of follow-up events with
// colliding timestamps and priorities, a fraction canceled before firing.
// It returns the firing trace.
func driveWorkload(d kernelDriver, seed uint64) []string {
	rng := NewRand(seed)
	var trace []string
	var spawn func(depth int, id int)
	spawn = func(depth int, id int) {
		at := d.clock() + Time(rng.Float64()*4)
		// Force timestamp collisions so the (priority, seq) tie-break is
		// exercised, not just the time order.
		if rng.Float64() < 0.3 {
			at = Time(math.Ceil(float64(at)))
		}
		pri := rng.Intn(3) - 1
		d.schedulePri(at, pri, func() {
			trace = append(trace, fmt.Sprintf("%d@%.6f/p%d", id, float64(d.clock()), pri))
			if depth > 0 {
				n := rng.Intn(3)
				for i := 0; i < n; i++ {
					spawn(depth-1, id*10+i)
				}
			}
		})
		if rng.Float64() < 0.2 {
			d.cancelLast()
		}
	}
	for root := 0; root < 40; root++ {
		spawn(3, root)
	}
	d.run()
	return trace
}

// TestKernelMatchesReferenceHeap pins the optimized kernel (inlined heap +
// event free list) to the container/heap reference: same firing order, same
// EventsFired, same final clock, across several seeds.
func TestKernelMatchesReferenceHeap(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		opt := &optDriver{s: New(seed)}
		ref := &refDriver{s: &refSim{}}
		gotTrace := driveWorkload(opt, seed)
		wantTrace := driveWorkload(ref, seed)
		if len(gotTrace) != len(wantTrace) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(gotTrace), len(wantTrace))
		}
		for i := range gotTrace {
			if gotTrace[i] != wantTrace[i] {
				t.Fatalf("seed %d: trace diverges at %d: %q vs %q", seed, i, gotTrace[i], wantTrace[i])
			}
		}
		if opt.firedCount() != ref.firedCount() {
			t.Fatalf("seed %d: EventsFired %d, reference %d", seed, opt.firedCount(), ref.firedCount())
		}
		if opt.clock() != ref.clock() {
			t.Fatalf("seed %d: final clock %v, reference %v", seed, opt.clock(), ref.clock())
		}
	}
}

// TestRunUntilNeverMovesClockBackwards is the regression test for the
// early-return branch of RunUntil setting now = limit unconditionally: after
// the clock has advanced past limit, RunUntil(limit) must leave it alone.
func TestRunUntilNeverMovesClockBackwards(t *testing.T) {
	s := New(1)
	s.Schedule(20, func() {})
	s.RunUntil(10)
	if s.Now() != 10 {
		t.Fatalf("Now = %v, want 10", s.Now())
	}
	// Queue still holds the t=20 event; a smaller limit used to drag the
	// clock back to 7 through the early-return branch.
	s.RunUntil(7)
	if s.Now() != 10 {
		t.Fatalf("RunUntil moved the clock backwards: Now = %v, want 10", s.Now())
	}
	// The empty-queue branch was already guarded; check it stays correct.
	s.RunUntil(25)
	if s.Now() != 25 {
		t.Fatalf("Now = %v, want 25", s.Now())
	}
	s.RunUntil(3)
	if s.Now() != 25 {
		t.Fatalf("RunUntil on empty queue moved the clock backwards: Now = %v, want 25", s.Now())
	}
	if s.EventsFired() != 1 {
		t.Fatalf("EventsFired = %d, want 1", s.EventsFired())
	}
}

// TestEventFreeListRecycles asserts the steady-state schedule/fire loop
// stops allocating once the free list warms up: a million-event chain must
// not carve more than one arena chunk.
func TestEventFreeListRecycles(t *testing.T) {
	s := New(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < 1_000_000 {
			s.ScheduleAfter(1, step)
		}
	}
	s.ScheduleAfter(0, step)
	s.Run()
	if s.EventsFired() != 1_000_000 {
		t.Fatalf("fired %d events, want 1000000", s.EventsFired())
	}
	if s.main.allocs > arenaChunk {
		t.Fatalf("allocated %d events for a 1-deep chain, want <= %d (free list not recycling)", s.main.allocs, arenaChunk)
	}
}

// TestCanceledEventsRecycledOnReap asserts canceled events return to the
// free list when the run loop reaps them.
func TestCanceledEventsRecycledOnReap(t *testing.T) {
	s := New(1)
	for round := 0; round < 1000; round++ {
		ev := s.Schedule(Time(round)+1, func() {})
		ev.Cancel()
		s.Schedule(Time(round)+1, func() {})
		s.RunUntil(Time(round) + 1)
	}
	if s.main.allocs > 2*arenaChunk {
		t.Fatalf("allocated %d events across 1000 cancel rounds, want <= %d", s.main.allocs, 2*arenaChunk)
	}
	if s.EventsFired() != 1000 {
		t.Fatalf("fired %d, want 1000", s.EventsFired())
	}
}
