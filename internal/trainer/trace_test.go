package trainer

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"

	"repro/internal/cost"
	"repro/internal/platform"
	"repro/internal/workload"
)

func TestWriteTraceCSV(t *testing.T) {
	w := workload.MobileNet()
	r := NewRunner(3)
	res, err := r.RunEpochs(w, w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 3),
		cost.Allocation{N: 10, MemMB: 1769, Storage: platform.S3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, res.Trace); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 5 { // header + 4 epochs
		t.Fatalf("rows = %d, want 5", len(records))
	}
	if records[0][0] != "epoch" || records[0][4] != "storage" {
		t.Errorf("header = %v", records[0])
	}
	for i, rec := range records[1:] {
		if e, err := strconv.Atoi(rec[0]); err != nil || e != i+1 {
			t.Errorf("row %d epoch cell = %q", i, rec[0])
		}
		if rec[4] != "S3" {
			t.Errorf("row %d storage = %q", i, rec[4])
		}
		if loss, err := strconv.ParseFloat(rec[1], 64); err != nil || loss <= 0 {
			t.Errorf("row %d loss = %q", i, rec[1])
		}
	}
}

func TestWriteTraceCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Errorf("empty trace should still write the header, got %d rows", len(records))
	}
}
