package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/planner"
	"repro/internal/sha"
	"repro/internal/storage"
	"repro/internal/trainer"
	"repro/internal/workload"
)

func init() {
	register("abl-gap", ablGap)
	register("abl-workflow", ablWorkflow)
	register("abl-asp", ablASP)
	register("abl-hyperband", ablHyperband)
	register("abl-pocket", ablPocket)
	register("abl-faults", ablFaults)
	register("abl-bohb", ablBOHB)
	register("abl-cluster", ablCluster)
}

// ablGap — optimality gap of the greedy heuristic planner (Algorithm 1)
// against an exact multiple-choice-knapsack dynamic program. The paper
// argues the NP-hard partitioning only needs a heuristic; this quantifies
// what the heuristic leaves on the table on this substrate.
func ablGap(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "abl-gap",
		Title:   "Greedy planner vs exact MCKP optimum (JCT-min given budget, 256 trials)",
		Headers: []string{"model", "budget mult", "static JCT", "greedy JCT", "exact JCT", "greedy gap", "greedy evals", "exact states"},
		Notes:   "exact = budget-discretized DP (4000 buckets) over (stage, budget, prev-memory); gap = (greedy-exact)/exact; the DP is orders of magnitude more work than the greedy's candidate evaluations",
	}
	models := workload.Evaluated()
	blocks, err := cells(len(models), func(i int) ([][]string, error) {
		// The two budget multiples share this model's planner (its Evaluated
		// counter is the reported metric), so they stay serial inside the cell.
		w := models[i]
		fw := core.New(w)
		stages := planner.SHAStages(256, 2, 2)
		pl, err := planner.New(fw.Model, stages, fw.Pareto)
		if err != nil {
			return nil, err
		}
		cheapest := pl.OptimalStatic(0, 1e15)
		var rows [][]string
		for _, mult := range []float64{1.2, 1.5} {
			budget := cheapest.Cost * mult
			static := pl.OptimalStatic(budget, 0)
			before := pl.Evaluated
			greedy := pl.PlanMinJCT(budget)
			evals := pl.Evaluated - before
			exact, ok := pl.ExactMinJCT(budget, 4000)
			if !ok {
				return nil, fmt.Errorf("abl-gap: %s: exact solver found no plan", w.Name)
			}
			gap := (greedy.JCT - exact.JCT) / exact.JCT
			rows = append(rows, []string{
				w.Name, fmt.Sprintf("%.1fx", mult),
				seconds(static.JCT), seconds(greedy.JCT), seconds(exact.JCT),
				pct(gap),
				fmt.Sprintf("%d", evals),
				fmt.Sprintf("%d", 4000*len(stages)*len(fw.Pareto)),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range blocks {
		t.Rows = append(t.Rows, rows...)
	}
	_ = seed
	return t, nil
}

// ablWorkflow — the end-to-end workflow of Fig. 1: hyperparameter tuning
// followed by training the winner, under one overall constraint.
func ablWorkflow(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "abl-workflow",
		Title:   "End-to-end workflow (Fig. 1): tuning phase + training phase under one budget",
		Headers: []string{"model", "budget", "tune JCT", "tune cost", "winner lr", "train JCT", "train cost", "total", "within budget"},
		Notes:   "64 trials, tuning reserved 60% of the budget; the training phase runs the tuning winner's hyperparameters to the target loss",
	}
	models := []*workload.Model{workload.MobileNet(), workload.ResNet50()}
	rows, err := cells(len(models), func(i int) ([]string, error) {
		w := models[i]
		fw := core.New(w)
		// Size the budget from the tuning static reference plus training
		// probe, like the per-phase experiments do.
		stages := planner.SHAStages(64, 2, 2)
		pl, err := planner.New(fw.Model, stages, fw.Pareto)
		if err != nil {
			return nil, err
		}
		budget := pl.OptimalStatic(0, 1e15).Cost * 2
		out, err := fw.RunWorkflow(core.WorkflowOptions{
			Budget: budget, Trials: 64, Seed: seed,
		}, trainer.NewRunner(seed))
		if err != nil {
			return nil, fmt.Errorf("abl-workflow: %s: %w", w.Name, err)
		}
		return []string{
			w.Name, dollars(budget),
			seconds(out.Tune.Run.JCT), dollars(out.Tune.Run.TotalCost),
			fmt.Sprintf("%.5f", out.BestHyperparams.LR),
			seconds(out.Train.Result.JCT), dollars(out.Train.Result.TotalCost),
			dollars(out.TotalCost),
			fmt.Sprintf("%v", out.WithinConstraint),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}

// ablASP — BSP vs asynchronous (Siren-style) training under identical
// allocations: ASP epochs are faster (no barrier, overlapped transfers) but
// staleness demands more of them, and the balance shifts with the worker
// count and the storage service.
func ablASP(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "abl-asp",
		Title:   "BSP vs asynchronous training under the same allocation",
		Headers: []string{"model", "allocation", "mode", "epochs", "JCT", "cost", "converged"},
		Notes:   "ASP follows the mean worker with 2 overlapped transfers/iteration; staleness dilutes per-epoch progress by 1/(1+0.12 ln n)",
	}
	cases := []struct {
		w *workload.Model
		a cost.Allocation
	}{
		{workload.MobileNet(), cost.Allocation{N: 10, MemMB: 1769, Storage: storage.S3}},
		{workload.MobileNet(), cost.Allocation{N: 50, MemMB: 1769, Storage: storage.S3}},
		{workload.LRHiggs(), cost.Allocation{N: 50, MemMB: 1769, Storage: storage.S3}},
	}
	// Flatten the case x mode matrix into independent cells.
	rows, err := cells(2*len(cases), func(i int) ([]string, error) {
		c := cases[i/2]
		async := i%2 == 1
		mode := "BSP"
		if async {
			mode = "ASP"
		}
		r := trainer.NewRunner(seed + 17)
		res, err := r.Run(trainer.Config{
			Workload:   c.w,
			Engine:     c.w.NewEngine(workload.Hyperparams{LR: c.w.DefaultLR}, seed),
			Alloc:      c.a,
			TargetLoss: c.w.TargetLoss,
			MaxEpochs:  2000,
			Async:      async,
		})
		if err != nil {
			return nil, err
		}
		return []string{
			c.w.Name, c.a.String(), mode,
			fmt.Sprintf("%d", res.Epochs), seconds(res.JCT), dollars(res.TotalCost),
			fmt.Sprintf("%v", res.Converged),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}

// ablHyperband — the §II-A claim that CE-scaling's partitioning applies to
// other early-stopping tuners: run Hyperband with CE's greedy planner vs a
// static plan per bracket.
func ablHyperband(seed uint64) (*Table, error) {
	w := workload.MobileNet()
	fw := core.New(w)
	t := &Table{
		ID:      "abl-hyperband",
		Title:   "Hyperband (R=9, eta=3) with CE-scaling's per-bracket partitioning vs static plans",
		Headers: []string{"planner", "best loss", "JCT", "cost", "brackets"},
		Notes:   "each Hyperband bracket's stage structure feeds the same greedy heuristic planner used for SHA; budget per bracket = 1.3x its cheapest static plan",
	}
	variants := []struct {
		name       string
		usePlanner bool
	}{{"CE-scaling", true}, {"static", false}}
	rows, err := cells(len(variants), func(i int) ([]string, error) {
		v := variants[i]
		res, err := sha.RunHyperband(sha.HyperbandConfig{
			Workload:  w,
			MaxEpochs: 9,
			Eta:       3,
			Runner:    trainer.NewRunner(seed + 31),
			Seed:      seed,
			PlanBracket: func(stages []planner.Stage) (planner.Plan, error) {
				pl, err := planner.New(fw.Model, stages, fw.Pareto)
				if err != nil {
					return planner.Plan{}, err
				}
				static := pl.OptimalStatic(0, 1e15)
				if !v.usePlanner {
					return static.Plan, nil
				}
				return pl.PlanMinJCT(static.Cost * 1.3).Plan, nil
			},
		})
		if err != nil {
			return nil, cellErr(v.name, err)
		}
		return []string{
			v.name, f4(res.Best.Loss), seconds(res.JCT), dollars(res.TotalCost),
			fmt.Sprintf("%d", len(res.Brackets)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}

// ablPocket — extending the storage dimension with a Pocket-style elastic
// ephemeral store (the paper's citation [22], not in its evaluation): does
// a fifth service change CE-scaling's picks?
func ablPocket(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "abl-pocket",
		Title:   "Extending the storage dimension with Pocket-style ephemeral storage",
		Headers: []string{"model", "services", "frontier size", "chosen storage", "JCT", "cost"},
		Notes:   "Pocket: auto-scaling, in-memory latency, request-charged at 5x S3 — a middle ground between S3 and ElastiCache; budget = geometric mean of the cheap and fast probes",
	}
	models := []*workload.Model{workload.MobileNet(), workload.BERT()}
	rows, err := cells(2*len(models), func(i int) ([]string, error) {
		w := models[i/2]
		extended := i%2 == 1
		grid := cost.DefaultGrid()
		label := "paper's four"
		if extended {
			grid.Storages = storage.ExtendedKinds()
			label = "four + Pocket"
		}
		fw := core.NewWithGrid(w, grid)
		probe, err := trainRef(fw, seed)
		if err != nil {
			return nil, err
		}
		res, err := runCE(fw, core.Options{Budget: probe.budgetRef(), Seed: seed}, seed, "abl-pocket/"+w.Name+"/"+label)
		if err != nil {
			return nil, err
		}
		// Report the storage the job spent most epochs on.
		counts := map[storage.Kind]int{}
		for _, e := range res.Trace {
			counts[e.Alloc.Storage]++
		}
		var chosen storage.Kind
		best := -1
		for k, c := range counts {
			if c > best {
				best, chosen = c, k
			}
		}
		return []string{
			w.Name, label,
			fmt.Sprintf("%d", len(fw.Pareto)),
			chosen.String(), seconds(res.JCT), dollars(res.TotalCost),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}

// ablFaults — failure injection: per-function crash rates inflate JCT and
// cost; per-epoch checkpointing through external storage bounds the damage,
// while disabling it makes every crash lose the whole job's progress.
func ablFaults(seed uint64) (*Table, error) {
	w := workload.MobileNet()
	t := &Table{
		ID:      "abl-faults",
		Title:   "Failure injection: crash rate vs JCT with and without checkpointing (MobileNet, n=10/1769MB/S3)",
		Headers: []string{"failure rate", "checkpointing", "failures", "epochs", "JCT", "failure time", "cost", "converged"},
		Notes:   "failure rate is per function per epoch; a crash aborts the BSP epoch; checkpointed jobs retry the epoch, uncheckpointed jobs restart from the initial model",
	}
	alloc := cost.Allocation{N: 10, MemMB: 1769, Storage: storage.S3}
	type faultCase struct {
		rate       float64
		checkpoint bool
	}
	var combos []faultCase
	for _, rate := range []float64{0, 0.005, 0.01, 0.02} {
		for _, checkpoint := range []bool{true, false} {
			if rate == 0 && !checkpoint {
				continue // identical to the checkpointed row
			}
			combos = append(combos, faultCase{rate, checkpoint})
		}
	}
	rows, err := cells(len(combos), func(i int) ([]string, error) {
		c := combos[i]
		r := trainer.NewRunner(seed + 53)
		r.Noise.FailureRate = c.rate
		res, err := r.Run(trainer.Config{
			Workload:          w,
			Engine:            w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, seed),
			Alloc:             alloc,
			TargetLoss:        w.TargetLoss,
			MaxEpochs:         400,
			DisableCheckpoint: !c.checkpoint,
		})
		if err != nil {
			return nil, err
		}
		return []string{
			pct(c.rate), fmt.Sprintf("%v", c.checkpoint),
			fmt.Sprintf("%d", res.Failures), fmt.Sprintf("%d", res.Epochs),
			seconds(res.JCT), seconds(res.FailureTime), dollars(res.TotalCost),
			fmt.Sprintf("%v", res.Converged),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}

// ablBOHB — BOHB (model-based sampling, the paper's [20]) vs plain
// Hyperband under identical brackets and partitioning: the TPE sampler
// learns across brackets, so later brackets explore near the good region.
func ablBOHB(seed uint64) (*Table, error) {
	w := workload.ResNet50()
	fw := core.New(w)
	t := &Table{
		ID:      "abl-bohb",
		Title:   "BOHB (TPE sampling) vs Hyperband under identical CE-scaling partitioning (ResNet50)",
		Headers: []string{"tuner", "best loss", "winner lr", "JCT", "cost"},
		Notes:   fmt.Sprintf("R=9, eta=3; optimum lr %.5f; both tuners use the greedy planner per bracket", w.LROpt),
	}
	planBracket := func(stages []planner.Stage) (planner.Plan, error) {
		pl, err := planner.New(fw.Model, stages, fw.Pareto)
		if err != nil {
			return planner.Plan{}, err
		}
		static := pl.OptimalStatic(0, 1e15)
		return pl.PlanMinJCT(static.Cost * 1.3).Plan, nil
	}
	tuners := []struct {
		name string
		run  func() (*sha.HyperbandResult, error)
	}{
		{"Hyperband", func() (*sha.HyperbandResult, error) {
			return sha.RunHyperband(sha.HyperbandConfig{
				Workload: w, MaxEpochs: 9, Eta: 3,
				Runner: trainer.NewRunner(seed + 61), Seed: seed,
				PlanBracket: planBracket,
			})
		}},
		{"BOHB", func() (*sha.HyperbandResult, error) {
			res, _, err := sha.RunBOHB(sha.HyperbandConfig{
				Workload: w, MaxEpochs: 9, Eta: 3,
				Runner: trainer.NewRunner(seed + 61), Seed: seed,
				PlanBracket: planBracket,
			})
			return res, err
		}},
	}
	rows, err := cells(len(tuners), func(i int) ([]string, error) {
		res, err := tuners[i].run()
		if err != nil {
			return nil, cellErr(tuners[i].name, err)
		}
		return []string{
			tuners[i].name, f4(res.Best.Loss), fmt.Sprintf("%.5f", res.Best.HP.LR),
			seconds(res.JCT), dollars(res.TotalCost),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}

// ablCluster — multiple tenants sharing one serverless account: CE-planned
// jobs contend for the 3000-function concurrency cap, queueing when their
// groups cannot be admitted (the multi-tenant setting of SLAQ/Optimus).
func ablCluster(seed uint64) (*Table, error) {
	w := workload.MobileNet()
	t := &Table{
		ID:      "abl-cluster",
		Title:   "Multi-tenant contention: four 1500-function jobs on a 3000-function account",
		Headers: []string{"job", "arrival", "queue delay", "turnaround", "JCT", "converged"},
		Notes:   "two jobs fit concurrently; the rest queue FIFO until a completion frees capacity",
	}
	r := trainer.NewRunner(seed + 71)
	var subs []cluster.Submission
	for i := 0; i < 4; i++ {
		subs = append(subs, cluster.Submission{
			Name:    fmt.Sprintf("job-%d", i+1),
			Arrival: float64(i) * 30,
			Config: trainer.Config{
				Workload:   w,
				Engine:     w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, seed+uint64(i)),
				Alloc:      cost.Allocation{N: 1500, MemMB: 1769, Storage: storage.ElastiCache},
				TargetLoss: w.TargetLoss,
				MaxEpochs:  400,
			},
		})
	}
	outs, err := cluster.Run(r, subs)
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		t.Rows = append(t.Rows, []string{
			o.Name, seconds(o.Arrival), seconds(o.QueueDelay), seconds(o.TurnaroundTime()),
			seconds(o.Result.JCT), fmt.Sprintf("%v", o.Result.Converged),
		})
	}
	t.Notes += fmt.Sprintf("; makespan %s", seconds(cluster.Makespan(outs)))
	return t, nil
}
