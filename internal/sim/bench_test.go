package sim

import "testing"

// BenchmarkScheduleRun is the kernel's hottest pattern: a self-scheduling
// event chain (every fired event schedules its successor), which is what a
// training job's epoch loop compiles down to. One op = one scheduled +
// fired event; -benchmem makes the per-event allocation count visible.
func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			s.ScheduleAfter(1, step)
		}
	}
	s.ScheduleAfter(1, step)
	s.Run()
	if int(s.EventsFired()) != b.N {
		b.Fatalf("fired %d, want %d", s.EventsFired(), b.N)
	}
}

// BenchmarkScheduleRunFanout keeps 64 events pending at all times, so each
// op pays real sift work in the priority queue, not just a root pop.
func BenchmarkScheduleRunFanout(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	const width = 64
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			s.ScheduleAfter(1+float64(n%7), step)
		}
	}
	for i := 0; i < width && i < b.N; i++ {
		n++
		s.ScheduleAfter(float64(i%5), step)
	}
	s.Run()
}

// BenchmarkScheduleCancel measures the schedule+cancel round trip: half the
// scheduled events are canceled before they fire (the warm-sandbox expiry
// pattern in internal/faas).
func BenchmarkScheduleCancel(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			ev := s.ScheduleAfter(2, func() {})
			ev.Cancel()
			s.ScheduleAfter(1, step)
		}
	}
	s.ScheduleAfter(1, step)
	s.Run()
}
