package experiments

// macro-chaos is the fault-injection acceptance scenario for the sharded
// kernel: the macro-day tenant fleet runs a shorter day while every tenant
// carries its own deterministic fault.Schedule, compiled onto its shard as
// ordinary kernel events. Four fault profiles rotate across the fleet
// (tenant t -> profile t%4):
//
//   - kills: in-flight sandboxes terminate mid-request, the victims'
//     completion events are cancelled (live-record bookkeeping keeps the
//     cancel set strictly pending, so strict-cancel stays clean) and the
//     clients immediately re-submit;
//   - reclaim+spike: the warm pool is spot-reclaimed and a cold-start
//     spike window makes the resulting cold starts expensive;
//   - brownout: checkpoint puts cross a storage.Faulty wrapper whose
//     deterministic error gate forces bounded retries, degrading to a
//     dropped checkpoint (never a panic) when the policy exhausts;
//   - straggler: service times inflate inside slowdown windows.
//
// Like macro-day, the table and obs exports must be byte-identical at every
// (shards, workers) setting: every fault event carries a priFault+tenant
// priority, each tenant's Faulty gate is private (the shared Store only
// accumulates order-independent counters), and the shard-0 monitor's
// feedback loop is pinned by the same report/absorb/shed priority bands.

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/platform/simbackend"
	"repro/internal/predictor"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trainer"
	"repro/internal/workload"
)

func init() {
	register("macro-chaos", runMacroChaos)
	register("fault-restart", runFaultRestart)
}

// Chaos scale knobs, overridable by cmd/cebench flags and scripts/bench.sh.
// Sharding reuses SetMacroSharding. Zero means "use the registered default".
var (
	chaosTenantsN   atomic.Int64
	chaosPerTenantN atomic.Int64
)

// SetChaosScale overrides the macro-chaos population: tenants accounts with
// perTenant invocations each. Zero restores the default (24 x 1000).
func SetChaosScale(tenants, perTenant int) {
	chaosTenantsN.Store(int64(tenants))
	chaosPerTenantN.Store(int64(perTenant))
}

const (
	chaosCkptEvery = 32    // checkpoint cadence, in completions per tenant
	chaosMonGap    = 600.0 // tenants report distress every 10 minutes

	// Fault band: above priAbsorb so a fault landing exactly on a report or
	// completion timestamp always fires after it, and +tenant id inside the
	// band so simultaneous faults on different shards stay globally unique
	// in (time, priority).
	priFault = 3_000_000
)

var chaosProfiles = [4]string{"kills", "reclaim+spike", "brownout", "straggler"}

// chaosSchedule is tenant t's deterministic fault diet: profile by t%4,
// every instant and window offset by t so no two tenants fault at the same
// time and the whole fleet's schedule is a pure function of the population.
func chaosSchedule(t int) *fault.Schedule {
	off := float64(t)
	switch t % 4 {
	case 0:
		return fault.MustNew(
			fault.KillAt(14400+617*off, 1),
			fault.KillAt(43200+617*off, 2),
			fault.KillAt(64800+617*off, 1),
		)
	case 1:
		return fault.MustNew(
			fault.ReclaimAt(10800+811*off, 3),
			fault.ReclaimAt(54000+811*off, 3),
			fault.ColdSpikeWindow(18000+450*off, 36000+450*off, 6),
		)
	case 2:
		return fault.MustNew(
			fault.BrownoutWindow(21600+523*off, 50400+523*off, 3, 0.4),
		)
	default:
		return fault.MustNew(
			fault.StragglerWindow(12600+379*off, 31200+379*off, 2),
			fault.StragglerWindow(57600+379*off, 72000+379*off, 3),
		)
	}
}

// chaosCall is one admitted request's pending completion: the live list
// mirrors the platform's in-flight set in admission order, so a kill can
// cancel exactly the victims' completions and nothing that already fired.
type chaosCall struct {
	seq     uint64
	service float64
	ev      sim.Event
}

// chaosTenant is one serverless account under fault injection: macro-day's
// tenant plus its fault schedule, the live in-flight record, a private
// faulty view of the shared checkpoint store, and the active window state.
type chaosTenant struct {
	id    int
	memMB int
	plat  *faas.Platform
	sh    *sim.Shard
	arr   *sim.Rand
	svc   *sim.Rand
	rty   *sim.Rand
	ckpt  *storage.Namespaced
	fckpt *storage.Faulty
	retry fault.RetryPolicy

	perTenant int
	phase     float64
	shedUntil sim.Time

	strag float64 // active straggler factor (1 = none)
	seq   uint64
	live  []chaosCall

	completed, killed, reclaimed, retried, shed, dropped, cold uint64
	ckptRetries, ckptDropped                                   uint64
}

func (tn *chaosTenant) arrivalAt(k int) sim.Time {
	const a = 0.5 / (2 * math.Pi)
	pos := (float64(k) + tn.arr.Float64()) / float64(tn.perTenant)
	g := pos - a*math.Cos(2*math.Pi*pos+tn.phase) + a*math.Cos(tn.phase)
	return sim.Time(macroDay * g)
}

func (tn *chaosTenant) arrive(k int) {
	if k+1 < tn.perTenant {
		next := tn.arrivalAt(k + 1)
		tn.sh.SchedulePriority(next, tn.id, func() { tn.arrive(k + 1) })
	}
	if tn.sh.Now() < tn.shedUntil {
		tn.shed++
		return
	}
	tn.tryInvoke(0)
}

func (tn *chaosTenant) tryInvoke(attempt int) {
	invs, err := tn.plat.InvokeGroup(1, tn.memMB)
	if err != nil {
		if attempt+1 >= macroMaxRetry {
			tn.dropped++
			return
		}
		tn.retried++
		backoff := sim.Duration(math.Ldexp(0.5, attempt) * tn.rty.Jitter(0.2))
		at := tn.sh.Now() + sim.Time(backoff)
		tn.sh.SchedulePriority(at, tn.id, func() { tn.tryInvoke(attempt + 1) })
		return
	}
	if invs[0].Cold {
		tn.cold++
	}
	service := tn.svc.LogNormal(math.Log(40), 0.5) * tn.strag
	tn.seq++
	seq := tn.seq
	done := tn.sh.Now() + sim.Time(invs[0].StartDelay+service)
	ev := tn.sh.SchedulePriority(done, tn.id, func() {
		tn.unlive(seq)
		tn.plat.ReleaseGroup(1, tn.memMB, service)
		tn.completed++
		if tn.completed%chaosCkptEvery == 0 {
			tn.checkpoint(service)
		}
	})
	tn.live = append(tn.live, chaosCall{seq: seq, service: service, ev: ev})
}

// unlive drops the fired completion from the live record; each completion
// removes itself first thing, so entries still listed are always pending.
func (tn *chaosTenant) unlive(seq uint64) {
	for i := range tn.live {
		if tn.live[i].seq == seq {
			tn.live = append(tn.live[:i], tn.live[i+1:]...)
			return
		}
	}
}

// kill terminates the n most recently admitted in-flight requests: the
// platform drops them from its in-flight count, their completion events are
// cancelled (still pending by the live-record invariant; at an equal
// timestamp the completion's lower priority fires first and removes
// itself), and each client re-submits immediately as a fresh attempt.
func (tn *chaosTenant) kill(n int) {
	if n > len(tn.live) {
		n = len(tn.live)
	}
	if n <= 0 {
		return
	}
	tn.plat.KillSandboxes(n)
	victims := append([]chaosCall(nil), tn.live[len(tn.live)-n:]...)
	tn.live = tn.live[:len(tn.live)-n]
	for _, v := range victims {
		v.ev.Cancel()
		tn.killed++
		tn.tryInvoke(0)
	}
}

// checkpoint writes through the tenant's faulty store view under the
// bounded retry policy; exhaustion drops this checkpoint and carries on —
// the serving path must degrade gracefully, never abort.
func (tn *chaosTenant) checkpoint(service float64) {
	key := fmt.Sprintf("%sckpt/%d", tn.ckpt.Prefix(), tn.completed/chaosCkptEvery)
	for attempt := 0; attempt < tn.retry.MaxAttempts; attempt++ {
		if err := tn.fckpt.TryPut(key, []float64{float64(tn.completed), service}); err == nil {
			return
		}
		tn.ckptRetries++
	}
	tn.ckptDropped++
}

// distress is the monitor's health signal: cumulative faults and pressure.
func (tn *chaosTenant) distress() int {
	return int(tn.killed + tn.dropped + tn.retried + tn.ckptRetries)
}

// report posts the tenant's distress to the shard-0 monitor one lookahead
// later, then schedules the next window's report.
func (tn *chaosTenant) report(mon *chaosMonitor, at sim.Time) {
	d := tn.distress()
	tn.sh.Post(mon.sh, at+sim.Time(macroLookahead), priAbsorb+tn.id, func() {
		mon.absorb(tn.id, d)
	})
	next := at + sim.Time(chaosMonGap)
	if float64(next) <= macroDay {
		tn.sh.SchedulePriority(next, priReport+tn.id, func() { tn.report(mon, next) })
	}
}

// chaosMonitor is the shard-0 health loop: when a window's fleet-wide
// distress grows past the threshold, it sheds the most distressed tenant
// for two report gaps. Victim choice and directive order are fixed by
// (distress, id), never by shard layout.
type chaosMonitor struct {
	sh       *sim.Shard
	tenants  []*chaosTenant
	distress []int
	scope    *obs.Observer

	seen      int
	lastTotal int
	threshold int
	sheds     uint64
}

func (m *chaosMonitor) absorb(tenant, distress int) {
	m.distress[tenant] = distress
	m.seen++
	if m.seen < len(m.tenants) {
		return
	}
	m.seen = 0
	total := 0
	for _, d := range m.distress {
		total += d
	}
	now := m.sh.Now()
	if total-m.lastTotal > m.threshold {
		worst := 0
		for t, d := range m.distress {
			if d > m.distress[worst] {
				worst = t
			}
		}
		tn := m.tenants[worst]
		at := now + sim.Time(macroLookahead)
		m.sh.Post(tn.sh, at, priShed+tn.id, func() {
			tn.shedUntil = at + sim.Time(2*macroReportGap)
		})
		m.sheds++
	}
	if m.scope != nil {
		m.scope.Trace().InstantAt(float64(now), "macro", "monitor", "window",
			obs.I("distress", total), obs.I("new", total-m.lastTotal), obs.I("sheds_total", int(m.sheds)))
	}
	m.lastTotal = total
}

func runMacroChaos(seed uint64) (*Table, error) {
	tenants := int(chaosTenantsN.Load())
	perTenant := int(chaosPerTenantN.Load())
	if tenants <= 0 {
		tenants = 24
	}
	if perTenant <= 0 {
		perTenant = 1000
	}
	shards := int(macroShards.Load())
	workers := int(macroWorkers.Load())
	if shards <= 0 {
		shards = 8
	}
	if workers <= 0 {
		workers = 1
	}

	b := simbackend.New(seed)
	b.ConfigureSharding(shards, workers, macroLookahead)
	s := b.Sim()
	collector := activeCollector.Load()

	meanService := 40 * math.Exp(0.5*0.5/2)
	perCap := int(float64(perTenant) * meanService / macroDay)
	if perCap < 2 {
		perCap = 2
	}

	mon := &chaosMonitor{
		sh:       s.Shard(0),
		distress: make([]int, tenants),
		// One new distress event per tenant per window is background noise;
		// above that the window had a real incident.
		threshold: tenants,
	}
	if collector != nil {
		mon.scope = collector.Scope("macro-chaos/monitor")
	}

	faults := 0
	fleet := make([]*chaosTenant, tenants)
	for t := 0; t < tenants; t++ {
		name := obs.ScopeName("macro-chaos", "t", t, tenants)
		limits := faas.DefaultLimits()
		limits.MaxConcurrency = perCap
		plat := b.TenantPlatform(name, t%shards, limits)
		tn := &chaosTenant{
			id:        t,
			memMB:     512 << (t % 3),
			plat:      plat,
			sh:        plat.Shard(),
			arr:       s.Rand(name + "/arrivals"),
			svc:       s.Rand(name + "/service"),
			rty:       s.Rand(name + "/retry"),
			ckpt:      b.Store().Namespace(name),
			fckpt:     storage.NewFaulty(b.Store()),
			retry:     fault.DefaultRetryPolicy(),
			perTenant: perTenant,
			phase:     2 * math.Pi * float64(t) / float64(tenants),
			strag:     1,
		}
		if collector != nil {
			plat.SetObserver(collector.Scope(name))
		}
		fleet[t] = tn

		faults += fault.Compile(chaosSchedule(t), tn.sh, priFault+tn.id, fault.Ops{
			Kill:      tn.kill,
			Reclaim:   func(n int) { tn.reclaimed += uint64(tn.plat.ReclaimWarm(n)) },
			Straggler: func(f float64) { tn.strag = f },
			Brownout:  func(_, errRate float64) { tn.fckpt.SetErrorRate(errRate) },
			ColdSpike: tn.plat.SetColdSpikeFactor,
		})

		tn.sh.SchedulePriority(tn.arrivalAt(0), tn.id, func() { tn.arrive(0) })
		first := sim.Time(chaosMonGap)
		tn.sh.SchedulePriority(first, priReport+tn.id, func() { tn.report(mon, first) })
	}
	mon.tenants = fleet

	s.Run()

	if n := s.Pending(); n != 0 {
		return nil, fmt.Errorf("macro-chaos: %d events still pending after Run", n)
	}

	// Aggregate per fault profile, always in tenant order so every float sum
	// has a fixed term order.
	type profileRow struct {
		tenants                                                    int
		completed, killed, reclaimed, retried, shed, dropped, cold uint64
		ckptRetries, ckptDropped                                   uint64
		cost                                                       float64
	}
	profiles := make([]profileRow, len(chaosProfiles))
	var total profileRow
	add := func(dst *profileRow, src profileRow) {
		dst.tenants += src.tenants
		dst.completed += src.completed
		dst.killed += src.killed
		dst.reclaimed += src.reclaimed
		dst.retried += src.retried
		dst.shed += src.shed
		dst.dropped += src.dropped
		dst.cold += src.cold
		dst.ckptRetries += src.ckptRetries
		dst.ckptDropped += src.ckptDropped
		dst.cost += src.cost
	}
	for t, tn := range fleet {
		m := tn.plat.Meter()
		add(&profiles[t%len(chaosProfiles)], profileRow{
			tenants: 1, completed: tn.completed, killed: tn.killed,
			reclaimed: tn.reclaimed, retried: tn.retried, shed: tn.shed,
			dropped: tn.dropped, cold: tn.cold,
			ckptRetries: tn.ckptRetries, ckptDropped: tn.ckptDropped,
			cost: m.Total(),
		})
	}
	for _, p := range profiles {
		add(&total, p)
	}

	row := func(label string, p profileRow) []string {
		return []string{
			label, fmt.Sprintf("%d", p.tenants),
			fmt.Sprintf("%d", p.completed), fmt.Sprintf("%d", p.killed),
			fmt.Sprintf("%d", p.reclaimed), fmt.Sprintf("%d", p.retried),
			fmt.Sprintf("%d", p.shed), fmt.Sprintf("%d", p.dropped),
			fmt.Sprintf("%d", p.ckptRetries), fmt.Sprintf("%d", p.ckptDropped),
			fmt.Sprintf("%d", p.cold), f4(p.cost),
		}
	}
	tab := &Table{
		ID:      "macro-chaos",
		Title:   "Macro chaos: tenant fleet under compiled per-tenant fault schedules",
		Headers: []string{"profile", "tenants", "completed", "killed", "reclaimed", "retried", "shed", "dropped", "ckpt_retry", "ckpt_drop", "cold", "cost$"},
	}
	for i, p := range profiles {
		tab.Rows = append(tab.Rows, row(chaosProfiles[i], p))
	}
	tab.Rows = append(tab.Rows, row("TOTAL", total))
	st := b.Store().Stats()
	tab.Notes = fmt.Sprintf(
		"%d tenants x %d arrivals over a 24h simulated day; per-tenant concurrency cap %d, monitor threshold %d (sheds=%d), checkpoints every %d completions (puts=%d); fault events compiled=%d; events=%d",
		tenants, perTenant, perCap, mon.threshold, mon.sheds, chaosCkptEvery, st.Puts, faults, s.EventsFired())
	return tab, nil
}

// fault-restart — the recovery-policy figure: the same kill-heavy fault
// schedule hits a training job twice, once under immediate restarts (the
// scheduler switches allocation as soon as it re-plans) and once under
// delayed restarts (the new group starts up while the old one finishes the
// epoch). The schedule is placed relative to a calm probe run's JCT so the
// kills land mid-training at any seed.
func runFaultRestart(seed uint64) (*Table, error) {
	w := workload.MobileNet()
	run := func(sched *fault.Schedule, delayed bool, qos float64) (*trainer.Result, error) {
		m := cost.NewModel(w)
		s := scheduler.New(scheduler.Config{
			Model:          m,
			Candidates:     m.ParetoSet(cost.DefaultGrid()),
			QoS:            qos,
			TargetLoss:     w.TargetLoss,
			DelayedRestart: delayed,
			Offline:        predictor.NewOffline(w),
			OfflineSeed:    seed,
		})
		r := trainer.NewRunner(seed)
		alloc, _ := s.Initial()
		return r.Run(trainer.Config{
			Workload:   w,
			Engine:     w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, seed),
			Alloc:      alloc,
			TargetLoss: w.TargetLoss,
			MaxEpochs:  2000,
			Faults:     sched,
			Controller: s.Controller(),
		})
	}

	probe, err := run(nil, false, 1e15)
	if err != nil {
		return nil, err
	}
	j := probe.JCT
	qos := 1.5 * j
	sched := func() *fault.Schedule {
		return fault.MustNew(
			fault.KillAt(0.15*j, 3),
			fault.KillAt(0.45*j, 3),
			fault.StragglerWindow(0.3*j, 0.7*j, 2),
			fault.BrownoutWindow(0.5*j, 0.9*j, 2, 0.5),
		)
	}

	tab := &Table{
		ID:      "fault-restart",
		Title:   "Fault recovery policy: immediate vs delayed restart under one fault schedule (MobileNet)",
		Headers: []string{"policy", "JCT", "overhead", "failures", "restarts", "ckpt retries", "degraded", "cost", "converged"},
		Notes: fmt.Sprintf(
			"schedule: 3-sandbox kills at 15%% and 45%% of the calm JCT (%s), a 2x straggler window over 30-70%%, a rate-0.5 brownout over 50-90%%; QoS = 1.5x calm JCT",
			seconds(j)),
	}
	cases := []struct {
		label   string
		sched   *fault.Schedule
		delayed bool
	}{
		{"no-fault", nil, false},
		{"immediate", sched(), false},
		{"delayed", sched(), true},
	}
	for _, c := range cases {
		res, err := run(c.sched, c.delayed, qos)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			c.label, seconds(res.JCT), seconds(res.OverheadTime),
			fmt.Sprintf("%d", res.Failures), fmt.Sprintf("%d", res.Restarts),
			fmt.Sprintf("%d", res.StorageRetries), fmt.Sprintf("%t", res.Degraded),
			f4(res.TotalCost), fmt.Sprintf("%t", res.Converged),
		})
	}
	return tab, nil
}
