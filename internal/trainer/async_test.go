package trainer

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/platform"
	"repro/internal/workload"
)

func asyncJob(alloc cost.Allocation, async bool, seed uint64) (Config, *Runner) {
	w := workload.MobileNet()
	r := NewRunner(seed)
	return Config{
		Workload:   w,
		Engine:     w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, seed),
		Alloc:      alloc,
		TargetLoss: w.TargetLoss,
		MaxEpochs:  2000,
		Async:      async,
	}, r
}

func TestAsyncEpochsFasterButMoreOfThem(t *testing.T) {
	alloc := cost.Allocation{N: 50, MemMB: 1769, Storage: platform.S3}
	cfgB, rB := asyncJob(alloc, false, 21)
	bsp, err := rB.Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	cfgA, rA := asyncJob(alloc, true, 21)
	asp, err := rA.Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if !bsp.Converged || !asp.Converged {
		t.Fatalf("convergence: bsp=%v asp=%v", bsp.Converged, asp.Converged)
	}
	// Per-epoch wall time must be much lower without the barrier and the
	// serialized sync pattern...
	bspPerEpoch := bsp.Trace[0].Time
	aspPerEpoch := asp.Trace[0].Time
	if aspPerEpoch >= bspPerEpoch {
		t.Errorf("ASP epoch %gs should beat BSP %gs at n=50/S3", aspPerEpoch, bspPerEpoch)
	}
	// ...but staleness costs extra wall epochs for the same progress.
	if asp.Epochs <= bsp.Epochs {
		t.Errorf("ASP should need more wall epochs: asp=%d bsp=%d", asp.Epochs, bsp.Epochs)
	}
}

func TestAsyncEfficiencyMonotone(t *testing.T) {
	if asyncEfficiency(1) != 1 {
		t.Error("single worker has no staleness")
	}
	prev := 1.0
	for _, n := range []int{2, 10, 50, 200} {
		e := asyncEfficiency(n)
		if e >= prev || e <= 0 || e > 1 {
			t.Errorf("asyncEfficiency(%d) = %g, want in (0, %g)", n, e, prev)
		}
		prev = e
	}
}

func TestAsyncAccountingStillBalances(t *testing.T) {
	alloc := cost.Allocation{N: 20, MemMB: 1769, Storage: platform.S3}
	cfg, r := asyncJob(alloc, true, 23)
	res, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.ComputeTime + res.SyncTime + res.OverheadTime
	if diff := sum - res.JCT; diff > 1e-6*res.JCT || diff < -1e-6*res.JCT {
		t.Errorf("JCT %g != components %g", res.JCT, sum)
	}
	csum := res.FunctionCost + res.StorageCost + res.InvokeCost
	if diff := csum - res.TotalCost; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("cost %g != components %g", res.TotalCost, csum)
	}
}

func TestAsyncLossMonotoneProgress(t *testing.T) {
	// The reported loss under ASP must repeat (staleness stalls) but never
	// regress to a value from many epochs before the engine advanced.
	alloc := cost.Allocation{N: 10, MemMB: 1769, Storage: platform.VMPS}
	cfg, r := asyncJob(alloc, true, 29)
	cfg.MaxEpochs = 40
	cfg.TargetLoss = 0 // run the full horizon
	res, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stalls := 0
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Loss == res.Trace[i-1].Loss {
			stalls++
		}
	}
	if stalls == 0 {
		t.Error("ASP at n=10 should stall some wall epochs (efficiency < 1)")
	}
}
