package ml

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/sim"
)

func benchData(rows int) *dataset.Matrix {
	return dataset.GenerateBinary(sim.NewRand(1), dataset.GenConfig{Samples: rows, Features: 32, NoiseFlip: 0.1})
}

func BenchmarkLogisticGradient(b *testing.B) {
	data := benchData(4000)
	w := make([]float64, data.Cols)
	idx := make([]int, 256)
	for i := range idx {
		idx[i] = i
	}
	grad := make([]float64, data.Cols)
	obj := Logistic{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Zero(grad)
		obj.Gradient(w, data, idx, grad)
	}
}

func BenchmarkLogisticLoss(b *testing.B) {
	data := benchData(4000)
	w := make([]float64, data.Cols)
	obj := Logistic{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj.Loss(w, data)
	}
}

func BenchmarkBSPEpoch(b *testing.B) {
	tr, err := NewTrainer(benchData(4000), Config{
		Objective: Logistic{}, Workers: 8, BatchPerWkr: 64, LearningRate: 0.3, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RunEpoch()
	}
}
