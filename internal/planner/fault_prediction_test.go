package planner

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/workload"
)

func TestJCTUnderFaults(t *testing.T) {
	pl := newPlanner(t, workload.MobileNet(), paperStages())
	plan := Uniform(pl.P[len(pl.P)/2].Alloc, len(pl.Stages))
	base := pl.JCT(plan)
	var retry fault.RetryPolicy

	// Inert schedules change nothing.
	if got := pl.JCTUnderFaults(plan, nil, 10, retry); got != base {
		t.Errorf("nil schedule: %g != %g", got, base)
	}
	if got := pl.JCTUnderFaults(plan, fault.MustNew(), 10, retry); got != base {
		t.Errorf("empty schedule: %g != %g", got, base)
	}

	// A straggler window covering the whole run scales every stage.
	slow := fault.MustNew(fault.StragglerWindow(0, 1e12, 2))
	if got, want := pl.JCTUnderFaults(plan, slow, 10, retry), 2*base; math.Abs(got-want) > 1e-9*want {
		t.Errorf("full straggler window: %g, want %g", got, want)
	}

	// Each kill inside the horizon adds exactly one recovery penalty.
	kills := fault.MustNew(fault.KillAt(0, 1), fault.KillAt(base/2, 1))
	if got, want := pl.JCTUnderFaults(plan, kills, 7, retry), base+2*7; math.Abs(got-want) > 1e-9*want {
		t.Errorf("two kills: %g, want %g", got, want)
	}
	// A kill far past the predicted end adds nothing.
	late := fault.MustNew(fault.KillAt(10*base+1e6, 3))
	if got := pl.JCTUnderFaults(plan, late, 7, retry); got != base {
		t.Errorf("out-of-horizon kill: %g != %g", got, base)
	}

	// An error-raising brownout budgets the retry backoff per stage it
	// covers; a latency-only brownout (rate 0) budgets none.
	brown := fault.MustNew(fault.BrownoutWindow(0, 1e12, 2, 0.5))
	wantBackoff := float64(len(pl.Stages)) * fault.DefaultRetryPolicy().TotalBackoff()
	if got, want := pl.JCTUnderFaults(plan, brown, 7, retry), base+wantBackoff; math.Abs(got-want) > 1e-9*want {
		t.Errorf("brownout: %g, want %g", got, want)
	}
	latOnly := fault.MustNew(fault.BrownoutWindow(0, 1e12, 2, 0))
	if got := pl.JCTUnderFaults(plan, latOnly, 7, retry); got != base {
		t.Errorf("latency-only brownout: %g != %g", got, base)
	}

	// Faults compose monotonically: more disruption, never a faster plan.
	all := fault.MustNew(
		fault.StragglerWindow(0, 1e12, 2),
		fault.KillAt(1, 1),
		fault.BrownoutWindow(0, 1e12, 2, 0.5),
	)
	if got := pl.JCTUnderFaults(plan, all, 7, retry); got <= 2*base {
		t.Errorf("composed schedule %g not above straggler-only %g", got, 2*base)
	}
}
