package cescaling_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/cescaling"
)

func TestQuickstartFlow(t *testing.T) {
	w, err := cescaling.ModelByName("MobileNet-Cifar10")
	if err != nil {
		t.Fatal(err)
	}
	fw := cescaling.New(w)
	runner := cescaling.NewRunner(42)

	tune, err := fw.RunHPT(16, 2, 2, cescaling.Options{Budget: 1e9, Seed: 1}, runner)
	if err != nil {
		t.Fatal(err)
	}
	if tune.Run.BestTrial == nil {
		t.Fatal("tuning returned no winner")
	}

	train, err := fw.Train(cescaling.Options{Budget: 100, Seed: 2}, cescaling.NewRunner(43))
	if err != nil {
		t.Fatal(err)
	}
	if !train.Result.Converged {
		t.Fatal("training did not converge")
	}
}

func TestModelsExposed(t *testing.T) {
	if len(cescaling.Models()) != 5 {
		t.Errorf("Models() returned %d, want 5", len(cescaling.Models()))
	}
	if _, err := cescaling.ModelByName("nope"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestStorageServicesExposed(t *testing.T) {
	svcs := cescaling.StorageServices()
	if len(svcs) != 4 {
		t.Fatalf("StorageServices returned %d, want 4", len(svcs))
	}
	kinds := map[cescaling.StorageKind]bool{}
	for _, s := range svcs {
		kinds[s.Kind()] = true
	}
	for _, k := range []cescaling.StorageKind{cescaling.S3, cescaling.DynamoDB, cescaling.ElastiCache, cescaling.VMPS} {
		if !kinds[k] {
			t.Errorf("missing service %v", k)
		}
	}
}

func TestParetoExposed(t *testing.T) {
	w, _ := cescaling.ModelByName("LR-Higgs")
	fw := cescaling.New(w)
	front := cescaling.Pareto(fw.Full)
	if len(front) == 0 || len(front) > len(fw.Full) {
		t.Errorf("front size %d of %d", len(front), len(fw.Full))
	}
}

func TestBaselinesExposed(t *testing.T) {
	w, _ := cescaling.ModelByName("MobileNet-Cifar10")
	fw := cescaling.New(w)
	stages := cescaling.SHAStages(64, 2, 2)
	res, err := cescaling.Baselines.LambdaMLPlan(fw.Model, stages, fw.Pareto, 1e9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Stages) != len(stages) {
		t.Error("baseline plan has wrong stage count")
	}
}

func TestPredictorsExposed(t *testing.T) {
	w, _ := cescaling.ModelByName("ResNet50-Cifar10")
	off := cescaling.NewOffline(w)
	if est := off.PredictEpochs(w.TargetLoss, 1); est < 1 {
		t.Errorf("offline estimate %d", est)
	}
	on := cescaling.NewOnline()
	for e := 1; e <= 6; e++ {
		on.Observe(e, 1.0/float64(e)+0.2)
	}
	if _, ok := on.PredictTotalEpochs(0.3); !ok {
		t.Error("online prediction unavailable")
	}
}

func TestClusterExposed(t *testing.T) {
	w, _ := cescaling.ModelByName("MobileNet-Cifar10")
	runner := cescaling.NewRunner(51)
	outs, err := cescaling.RunCluster(runner, []cescaling.ClusterSubmission{
		{
			Name: "only",
			Config: cescaling.TrainJob{
				Workload:   w,
				Engine:     w.NewEngine(cescaling.Hyperparams{LR: w.DefaultLR}, 51),
				Alloc:      cescaling.Allocation{N: 10, MemMB: 1769, Storage: cescaling.S3},
				TargetLoss: w.TargetLoss,
				MaxEpochs:  400,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || !outs[0].Result.Converged {
		t.Fatalf("cluster run: %+v", outs)
	}
}

func TestTraceCSVExposed(t *testing.T) {
	w, _ := cescaling.ModelByName("MobileNet-Cifar10")
	out, err := cescaling.New(w).Train(cescaling.Options{Budget: 1e6, Seed: 61}, cescaling.NewRunner(61))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cescaling.WriteTraceCSV(&buf, out.Result.Trace); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "epoch,loss") {
		t.Errorf("trace header missing: %q", buf.String()[:40])
	}
}
