package trainer

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/platform"
	"repro/internal/workload"
)

func failureJob(rate float64, noCheckpoint bool, seed uint64) (*Result, error) {
	w := workload.MobileNet()
	r := NewRunner(seed)
	r.Noise.FailureRate = rate
	return r.Run(Config{
		Workload:          w,
		Engine:            w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, seed),
		Alloc:             cost.Allocation{N: 10, MemMB: 1769, Storage: platform.S3},
		TargetLoss:        w.TargetLoss,
		MaxEpochs:         400,
		DisableCheckpoint: noCheckpoint,
	})
}

func TestNoFailuresWithoutInjection(t *testing.T) {
	res, err := failureJob(0, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 || res.FailureTime != 0 {
		t.Errorf("failures injected without a rate: %d / %g", res.Failures, res.FailureTime)
	}
}

func TestFailuresSlowTheJobButItConverges(t *testing.T) {
	clean, err := failureJob(0, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := failureJob(0.01, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !faulty.Converged {
		t.Fatalf("checkpointed job should survive failures (loss %g)", faulty.FinalLoss)
	}
	if faulty.Failures == 0 {
		t.Fatal("1% per-function failure rate at n=10 should produce failures")
	}
	if faulty.JCT <= clean.JCT {
		t.Errorf("failures should inflate JCT: %g vs clean %g", faulty.JCT, clean.JCT)
	}
	// Checkpointing bounds the damage: the same number of engine epochs.
	if faulty.Epochs != clean.Epochs {
		t.Errorf("checkpointed epochs %d != clean %d", faulty.Epochs, clean.Epochs)
	}
	if faulty.FailureTime <= 0 {
		t.Error("failure time not accounted")
	}
}

func TestFailureAccountingBalances(t *testing.T) {
	res, err := failureJob(0.02, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.ComputeTime + res.SyncTime + res.OverheadTime
	if diff := sum - res.JCT; diff > 1e-6*res.JCT || diff < -1e-6*res.JCT {
		t.Errorf("JCT %g != components %g", res.JCT, sum)
	}
	if res.FailureTime > res.OverheadTime {
		t.Error("failure time exceeds total overhead")
	}
}

func TestCheckpointingBeatsNoCheckpointUnderFailures(t *testing.T) {
	// The point of checkpointing through storage: with per-epoch
	// checkpoints a crash retries one epoch; without them it loses all
	// progress, so the job needs far more wall epochs (or never finishes).
	with, err := failureJob(0.008, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	without, err := failureJob(0.008, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !with.Converged {
		t.Fatal("checkpointed run should converge")
	}
	if without.Converged && without.Epochs <= with.Epochs {
		t.Errorf("no-checkpoint run converged in %d epochs <= checkpointed %d; restarts had no cost",
			without.Epochs, with.Epochs)
	}
}

// TestFailureCapIsSurfaced: at a failure rate near 1 every epoch's retry
// loop hits the attempt cap, and the synthetic model proceeds as if the
// epoch succeeded. That truncation must be surfaced in the Result (and as a
// trainer.failure_cap stat), not silently dropped — before the fix
// FailureCapped stayed 0 while the job quietly under-reported its failures.
func TestFailureCapIsSurfaced(t *testing.T) {
	w := workload.MobileNet()
	r := NewRunner(11)
	r.Noise.FailureRate = 0.999
	res, err := r.Run(Config{
		Workload:  w,
		Engine:    w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 11),
		Alloc:     cost.Allocation{N: 10, MemMB: 1769, Storage: platform.S3},
		MaxEpochs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// groupP = 1 - (1-0.999)^10 ~ 1: every draw fails, so every epoch's
	// loop runs all its attempts and gives up.
	if res.Failures == 0 {
		t.Fatal("no failures at rate 0.999")
	}
	if res.FailureCapped != res.Epochs {
		t.Errorf("FailureCapped = %d, want one truncation per epoch (%d)", res.FailureCapped, res.Epochs)
	}
}

// TestFailureCapNotHitAtEvaluationRates: the paper's evaluation rates
// (<= 0.02) never exhaust the attempt cap, so surfacing the truncation
// changes nothing on the default path.
func TestFailureCapNotHitAtEvaluationRates(t *testing.T) {
	res, err := failureJob(0.02, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailureCapped != 0 {
		t.Errorf("FailureCapped = %d at rate 0.02, want 0", res.FailureCapped)
	}
}

// TestRecoveryComputeIsBilled: a crashed epoch attempt costs the group the
// wasted fraction AND costs the restarted sandbox its recovery run (cold
// start + checkpoint re-pull). Before the fix only the wasted fraction was
// billed: the recovery seconds sat in the job clock and FailureTime but
// never reached BillCompute or the Result's cost, so failure-heavy
// configurations looked cheaper than they were.
func TestRecoveryComputeIsBilled(t *testing.T) {
	clean, err := failureJob(0, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := failureJob(0.02, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Failures == 0 {
		t.Skip("no failures drawn at this seed")
	}
	if faulty.Epochs != clean.Epochs {
		t.Fatalf("epochs diverged (%d vs %d); cost delta not attributable to failures", faulty.Epochs, clean.Epochs)
	}
	// Each failure's recovery time is the deterministic cold start plus the
	// checkpoint re-pull at group concurrency; the wasted fractions are the
	// remainder of FailureTime. Both cost out linearly (all durations are
	// far above the 1 ms billing floor).
	r := NewRunner(7)
	w := workload.MobileNet()
	recoverEach := r.Compute().ColdStartEstimate(1769) +
		r.Service(platform.S3).TransferTime(10, w.ParamsMB)
	recoverSec := float64(faulty.Failures) * recoverEach
	wastedSec := faulty.FailureTime - recoverSec
	if wastedSec <= 0 {
		t.Fatalf("wasted seconds %g <= 0; FailureTime %g, recovery %g", wastedSec, faulty.FailureTime, recoverSec)
	}
	perSec := r.Prices.ComputeOnlyCost(1, 1769)
	want := (10*wastedSec + recoverSec) * perSec
	got := faulty.TotalCost - clean.TotalCost
	if diff := math.Abs(got - want); diff > 1e-9*want {
		t.Errorf("failure billing = %g, want wasted+recovery %g (wasted-only would be %g)",
			got, want, 10*wastedSec*perSec)
	}
	// The platform meter must agree: the recovery compute is real platform
	// usage, not just a Result-side adjustment.
	mClean := meterComputeCost(t, 0, 7)
	mFaulty := meterComputeCost(t, 0.02, 7)
	if diff := math.Abs((mFaulty - mClean) - want); diff > 1e-9*want {
		t.Errorf("meter failure billing = %g, want %g", mFaulty-mClean, want)
	}
}

// meterComputeCost runs failureJob and returns the backend platform meter's
// compute cost.
func meterComputeCost(t *testing.T, rate float64, seed uint64) float64 {
	t.Helper()
	w := workload.MobileNet()
	r := NewRunner(seed)
	r.Noise.FailureRate = rate
	if _, err := r.Run(Config{
		Workload:   w,
		Engine:     w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, seed),
		Alloc:      cost.Allocation{N: 10, MemMB: 1769, Storage: platform.S3},
		TargetLoss: w.TargetLoss,
		MaxEpochs:  400,
	}); err != nil {
		t.Fatal(err)
	}
	m := r.Compute().Meter()
	return m.ComputeCost
}

func TestFailedAttemptsAreBilled(t *testing.T) {
	clean, err := failureJob(0, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := failureJob(0.02, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Failures == 0 {
		t.Skip("no failures drawn at this seed")
	}
	// Same engine epochs, strictly more bill: the platform charges for
	// crashed attempts too.
	if faulty.TotalCost <= clean.TotalCost {
		t.Errorf("faulty cost %g should exceed clean %g", faulty.TotalCost, clean.TotalCost)
	}
}
