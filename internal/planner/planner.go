// Package planner implements resource partitioning across the stages of an
// early-stopping hyperparameter-tuning run (§III-C): the optimal-static warm
// start, the cluster-style Fixed baseline, and the paper's greedy heuristic
// planner (Algorithm 1) that recycles resources from early stages — where
// most trials are terminated — to later stages, under a budget or a QoS
// constraint. The underlying optimization is a multiple-choice knapsack
// (NP-hard), which the heuristic approximates while guaranteeing the result
// is never worse than the optimal static plan it starts from.
package planner

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Stage describes one SHA stage: q_i surviving trials running r_i epochs.
type Stage struct {
	Trials int // q_i
	Epochs int // r_i
}

// SHAStages builds the successive-halving stage structure: trials0 trials
// reduced by factor eta per stage until two remain, each stage running
// epochsPerStage epochs (the paper: 16384 trials, eta 2, 14 stages, 2
// epochs each).
func SHAStages(trials0, eta, epochsPerStage int) []Stage {
	if eta < 2 {
		eta = 2
	}
	var out []Stage
	for q := trials0; q >= 2; q /= eta {
		out = append(out, Stage{Trials: q, Epochs: epochsPerStage})
		if q == 2 {
			break
		}
	}
	return out
}

// Plan assigns one allocation to every stage.
type Plan struct {
	Stages []cost.Allocation
}

// Clone returns a deep copy of the plan.
func (p Plan) Clone() Plan {
	s := make([]cost.Allocation, len(p.Stages))
	copy(s, p.Stages)
	return Plan{Stages: s}
}

// Uniform returns a plan using allocation a for all d stages.
func Uniform(a cost.Allocation, d int) Plan {
	s := make([]cost.Allocation, d)
	for i := range s {
		s[i] = a
	}
	return Plan{Stages: s}
}

// Planner evaluates and optimizes partitioning plans for one workload.
type Planner struct {
	Model  *cost.Model
	Stages []Stage
	// P is the Pareto set, sorted by ascending epoch time (descending
	// cost); index 0 is the fastest/priciest allocation.
	P []cost.Point
	// Delta is the minimum relative JCT improvement to keep iterating.
	Delta float64

	// Evaluated counts candidate evaluations (the scheduling-overhead
	// metric of §IV-G).
	Evaluated int

	// Obs, when set, records each plan's per-stage allocation decisions
	// and summary as trace events (timestamped by stage index — plans are
	// structural, not temporal). Nil disables recording.
	Obs *obs.Observer
}

// New returns a planner over the model's Pareto set for the given stages.
func New(m *cost.Model, stages []Stage, pareto []cost.Point) (*Planner, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("planner: no stages")
	}
	if len(pareto) == 0 {
		return nil, fmt.Errorf("planner: empty Pareto set")
	}
	return &Planner{Model: m, Stages: stages, P: pareto, Delta: 0.01}, nil
}

// index returns the position of a in P, or -1.
func (pl *Planner) index(a cost.Allocation) int {
	for i, p := range pl.P {
		if p.Alloc == a {
			return i
		}
	}
	return -1
}

// waves returns how many admission waves stage i needs under allocation a:
// q_i concurrent trials of n functions each must fit the concurrency cap.
func (pl *Planner) waves(i int, a cost.Allocation) int {
	cap := pl.Model.Limits.MaxConcurrency
	need := pl.Stages[i].Trials * a.N
	w := (need + cap - 1) / cap
	if w < 1 {
		w = 1
	}
	return w
}

// StageTime returns the wall time of stage i under allocation a: per wave,
// the group start (cold for the first stage, warm afterwards — the planner
// pre-warms the next stage's sandboxes), the data load, and the epochs.
func (pl *Planner) StageTime(i int, a cost.Allocation) float64 {
	return pl.stageTimeWaves(i, a, pl.waves(i, a))
}

// StageTimeCapped is StageTime with stage concurrency capped at capN
// functions (the cluster-style Fixed baseline gives each stage an equal
// concurrency share).
func (pl *Planner) StageTimeCapped(i int, a cost.Allocation, capN int) float64 {
	if capN < a.N {
		capN = a.N
	}
	perWave := capN / a.N
	w := (pl.Stages[i].Trials + perWave - 1) / perWave
	if w < 1 {
		w = 1
	}
	return pl.stageTimeWaves(i, a, w)
}

func (pl *Planner) stageTimeWaves(i int, a cost.Allocation, waves int) float64 {
	return pl.stageTimeWavesCold(i, a, waves, i == 0)
}

func (pl *Planner) stageTimeWavesCold(i int, a cost.Allocation, waves int, cold bool) float64 {
	start := 0.02 // warm start: the previous stage's sandboxes are reused
	if cold {
		start = pl.Model.StartupEstimate(a)
	}
	perRun := start + pl.Model.LoadTime(a) + float64(pl.Stages[i].Epochs)*pl.Model.EpochTime(a)
	return float64(waves) * perRun
}

// Waves returns how many admission waves stage i needs under allocation a.
func (pl *Planner) Waves(i int, a cost.Allocation) int { return pl.waves(i, a) }

// StageCost returns the cost of stage i under allocation a: every trial
// bills its epochs, its data load, and its function-group invocation.
func (pl *Planner) StageCost(i int, a cost.Allocation) float64 {
	q := float64(pl.Stages[i].Trials)
	r := float64(pl.Stages[i].Epochs)
	load := pl.Model.LoadTime(a)
	perTrial := r*pl.Model.EpochCost(a) +
		pl.Model.InvocationCost(a) +
		float64(a.N)*pl.Model.Prices.ComputeOnlyCost(load, float64(a.MemMB)) +
		storage.LoadCost(pl.Model.Prices, a.N)
	return q * perTrial
}

// JCT returns T^h: the summed stage wall times (Eq. 7). A stage whose
// allocation differs from its predecessor's pays a cold start (the warm
// pool only holds sandboxes of the previous memory size); same-allocation
// stages reuse warm sandboxes.
func (pl *Planner) JCT(p Plan) float64 {
	var t float64
	for i, a := range p.Stages {
		cold := i == 0 || a.MemMB != p.Stages[i-1].MemMB
		t += pl.stageTimeWavesCold(i, a, pl.waves(i, a), cold)
	}
	return t
}

// Cost returns C^h: the summed cost over all trials of all stages (Eq. 8).
func (pl *Planner) Cost(p Plan) float64 {
	var c float64
	for i, a := range p.Stages {
		c += pl.StageCost(i, a)
	}
	return c
}

// Result carries a finished plan and its predicted metrics.
type Result struct {
	Plan     Plan
	JCT      float64
	Cost     float64
	Feasible bool // constraint satisfied by the prediction
	// Evaluated is how many candidate plans the search predicted, the
	// §IV-G overhead proxy.
	Evaluated int
}

// OptimalStatic enumerates P for the best uniform plan: minimal JCT among
// plans within budget (budget > 0), or minimal cost among plans within qos
// (qos > 0). Exactly one constraint must be positive. When nothing
// satisfies the constraint it returns the plan closest to satisfying it
// with Feasible=false.
func (pl *Planner) OptimalStatic(budget, qos float64) Result {
	best := Result{JCT: math.Inf(1), Cost: math.Inf(1)}
	var fallback Result
	fallbackGap := math.Inf(1)
	for _, pt := range pl.P {
		plan := Uniform(pt.Alloc, len(pl.Stages))
		jct, c := pl.JCT(plan), pl.Cost(plan)
		pl.Evaluated++
		ok := (budget <= 0 || c <= budget) && (qos <= 0 || jct <= qos)
		if ok {
			better := false
			if budget > 0 {
				better = jct < best.JCT
			} else {
				better = c < best.Cost
			}
			if better {
				best = Result{Plan: plan, JCT: jct, Cost: c, Feasible: true}
			}
			continue
		}
		gap := 0.0
		if budget > 0 && c > budget {
			gap += (c - budget) / budget
		}
		if qos > 0 && jct > qos {
			gap += (jct - qos) / qos
		}
		if gap < fallbackGap {
			fallbackGap = gap
			fallback = Result{Plan: plan, JCT: jct, Cost: c, Feasible: false}
		}
	}
	if best.Feasible {
		return best
	}
	return fallback
}

// ConcurrencyShare returns the per-stage concurrency pool of the
// cluster-based Fixed baseline: the platform cap divided evenly among the
// stages.
func (pl *Planner) ConcurrencyShare() int {
	share := pl.Model.Limits.MaxConcurrency / len(pl.Stages)
	if share < 1 {
		share = 1
	}
	return share
}

// FixedPlan implements the cluster-based baseline (§IV-B "Fixed"): the
// platform's resources are divided evenly among stages, so each stage may
// only use 1/d of the concurrency. Early stages, which host exponentially
// more trials, queue in long admission waves (resource competition), while
// late stages waste their oversized share — the failure mode Fig. 9-11
// report. The per-trial allocation is the constraint's optimal static
// choice; the JCT accounts for the share-capped waves.
func (pl *Planner) FixedPlan(budget, qos float64) Result {
	static := pl.OptimalStatic(budget, qos)
	share := pl.ConcurrencyShare()
	var jct float64
	for i, a := range static.Plan.Stages {
		jct += pl.StageTimeCapped(i, a, share)
	}
	feasible := (budget <= 0 || static.Cost <= budget) && (qos <= 0 || jct <= qos)
	return Result{Plan: static.Plan, JCT: jct, Cost: static.Cost, Feasible: feasible, Evaluated: static.Evaluated}
}

// candidate mutations along the Pareto frontier. P is sorted by time
// ascending = cost descending, so higher indices are cheaper/slower
// per-epoch allocations and lower indices faster/pricier ones. Moves
// consider every position in the chosen direction — a multiple-choice
// knapsack reassignment, not just the adjacent step — because the best
// reallocation may sit across a valley (e.g. a much smaller function count
// that collapses an early stage's admission waves).
func (pl *Planner) moveCandidates(p Plan, stage int, upgrade bool) []Plan {
	idx := pl.index(p.Stages[stage])
	if idx < 0 {
		return nil
	}
	var out []Plan
	if upgrade {
		for j := idx - 1; j >= 0; j-- {
			q := p.Clone()
			q.Stages[stage] = pl.P[j].Alloc
			out = append(out, q)
		}
	} else {
		for j := idx + 1; j < len(pl.P); j++ {
			q := p.Clone()
			q.Stages[stage] = pl.P[j].Alloc
			out = append(out, q)
		}
	}
	return out
}

// earlyStages returns the stage indices considered "early" (the first half,
// where terminated trials concentrate).
func (pl *Planner) earlyStages() []int {
	d := len(pl.Stages)
	half := d / 2
	if half == 0 {
		half = 1
	}
	idxs := make([]int, 0, half)
	for i := 0; i < half; i++ {
		idxs = append(idxs, i)
	}
	return idxs
}

func (pl *Planner) lateStages() []int {
	d := len(pl.Stages)
	start := d / 2
	if start == 0 {
		start = d - 1
	}
	idxs := make([]int, 0, d-start)
	for i := start; i < d; i++ {
		idxs = append(idxs, i)
	}
	return idxs
}

// PlanMinJCT runs Algorithm 1: minimize JCT subject to the budget b_c.
func (pl *Planner) PlanMinJCT(budget float64) Result {
	return pl.greedy(budget, 0)
}

// PlanMinCost runs the cost-minimization variant (Eq. 11-12): minimize cost
// subject to the QoS constraint tau.
func (pl *Planner) PlanMinCost(qos float64) Result {
	return pl.greedy(0, qos)
}

// greedy is Algorithm 1 with the objective selected by which constraint is
// set: budget > 0 minimizes JCT under the budget, qos > 0 minimizes cost
// under the deadline. Both variants share the same structure:
//
//	phase 1 — recycle resources from early stages (cheapen: most of their
//	trials are terminated anyway) and reallocate the freed resources to
//	later stages (upgrade), keeping the plan inside the static plan's
//	resource envelope; iterate while the objective improves by >= Delta.
//	phase 2 — spend any remaining constraint headroom: under a budget,
//	upgrade stages (buy JCT) until the budget is used up; under a QoS
//	constraint, cheapen stages (sell slack for money) until the deadline
//	headroom is used up. Candidates that violate the constraint are
//	blacklisted (the A_2' set of Algorithm 1).
func (pl *Planner) greedy(budget, qos float64) Result {
	evalStart := pl.Evaluated
	warm := pl.OptimalStatic(budget, qos)
	staticCost := warm.Cost
	best := warm

	minJCT := budget > 0
	objective := func(r Result) float64 {
		if minJCT {
			return r.JCT
		}
		return r.Cost
	}
	withinConstraint := func(r Result) bool {
		if minJCT {
			return r.Cost <= budget
		}
		return r.JCT <= qos
	}
	// The static-plan cost envelope phase 1 must respect under a budget
	// (Algorithm 1 line 6). Under a QoS constraint the envelope is the
	// deadline itself: cheapening spends JCT slack, and upgrades only run
	// to restore feasibility.
	withinStatic := func(r Result) bool {
		if minJCT {
			return r.Cost <= staticCost*(1+1e-12)
		}
		return r.JCT <= qos
	}

	evaluate := func(p Plan) Result {
		pl.Evaluated++
		jct, c := pl.JCT(p), pl.Cost(p)
		return Result{Plan: p, JCT: jct, Cost: c}
	}

	// Phase 1 (lines 2-14).
	for iter := 0; iter < 4*len(pl.Stages); iter++ {
		recycled, ok := pl.bestMove(best, pl.earlyStages(), false, evaluate)
		if !ok {
			break
		}
		// Reallocate the freed resources to later stages. Under a budget,
		// upgrades fill the freed cost envelope; under a deadline, upgrades
		// run only to restore QoS feasibility lost to the cheapening.
		current := recycled
		if minJCT {
			for {
				next, _, ok := pl.bestMoveStage(current, pl.lateStages(), true, evaluate)
				if !ok || !withinStatic(next) {
					break
				}
				current = next
			}
		} else {
			for !withinStatic(current) {
				next, _, ok := pl.bestMoveStage(current, pl.lateStages(), true, evaluate)
				if !ok {
					break
				}
				current = next
			}
		}
		if !withinStatic(current) || !withinConstraint(current) {
			break
		}
		improvement := (objective(best) - objective(current)) / math.Max(objective(best), 1e-12)
		if improvement < pl.Delta {
			break
		}
		best = current
	}

	// Phase 2 (lines 15-25): under a budget buy speed with leftover money;
	// under a deadline sell leftover slack for savings. Candidates that
	// violate the constraint are discarded inside the move evaluation (the
	// A_2' set of Algorithm 1).
	all := make([]int, len(pl.Stages))
	for i := range all {
		all[i] = i
	}
	evaluateConstrained := func(p Plan) Result {
		r := evaluate(p)
		if !withinConstraint(r) {
			// Poison the move so it never wins the benefit ranking.
			r.JCT = math.Inf(1)
			r.Cost = math.Inf(1)
		}
		return r
	}
	for iter := 0; iter < 16*len(pl.Stages); iter++ {
		next, _, ok := pl.bestMoveStage(best, all, minJCT, evaluateConstrained)
		if !ok || math.IsInf(objective(next), 1) {
			break
		}
		improvement := (objective(best) - objective(next)) / math.Max(objective(best), 1e-12)
		if improvement < pl.Delta/10 {
			break
		}
		best = next
	}

	// Phase 3 — polish: hill-climb over all single-stage reassignments in
	// either direction. The phase-1/2 structure (recycle early, spend
	// late) reaches a good region fast; this local search closes most of
	// the remaining gap to the exact MCKP optimum (see ExactMinJCT and the
	// optimality-gap tests) while staying within the candidate-evaluation
	// budget the overhead experiments account for.
	for iter := 0; iter < 32*len(pl.Stages); iter++ {
		improved := false
		for i := range pl.Stages {
			for _, dir := range []bool{true, false} {
				for _, cand := range pl.moveCandidates(best.Plan, i, dir) {
					r := evaluate(cand)
					if !withinConstraint(r) {
						continue
					}
					if objective(r) < objective(best)*(1-pl.Delta/100) {
						best = r
						improved = true
					}
				}
			}
		}
		if !improved {
			break
		}
	}

	best.Feasible = withinConstraint(best)
	// Guarantee: never worse than the warm start (the plan is built by
	// incremental improvement on the optimal static allocation).
	if warm.Feasible && (!best.Feasible || objective(best) > objective(Result{JCT: warm.JCT, Cost: warm.Cost})) {
		best = warm
		best.Feasible = true
	}
	best.Evaluated = pl.Evaluated - evalStart
	pl.logPlan(minJCT, budget, qos, best)
	return best
}

// logPlan records the chosen plan: one instant per stage (timestamped by
// stage index) with the allocation assigned to it, plus a summary carrying
// the objective, constraint and evaluation count.
func (pl *Planner) logPlan(minJCT bool, budget, qos float64, r Result) {
	if !pl.Obs.Enabled() {
		return
	}
	mode := "min-cost"
	constraint := qos
	if minJCT {
		mode = "min-jct"
		constraint = budget
	}
	for i, a := range r.Plan.Stages {
		pl.Obs.Trace().InstantAt(float64(i), "planner", "planner", "stage_alloc",
			obs.I("stage", i), obs.I("trials", pl.Stages[i].Trials), obs.I("epochs", pl.Stages[i].Epochs),
			obs.I("n", a.N), obs.I("mem_mb", a.MemMB), obs.S("storage", a.Storage.String()))
	}
	pl.Obs.Trace().InstantAt(float64(len(r.Plan.Stages)), "planner", "planner", "plan",
		obs.S("mode", mode), obs.F("constraint", constraint),
		obs.F("jct", r.JCT), obs.F("cost", r.Cost),
		obs.B("feasible", r.Feasible), obs.I("evaluated", r.Evaluated))
	pl.Obs.Stats().Inc("planner.plans")
	pl.Obs.Stats().Add("planner.evaluated", float64(r.Evaluated))
}

// bestMove evaluates moving each candidate stage one step along the Pareto
// frontier — upgrade=true moves toward faster/pricier allocations, false
// toward cheaper/slower ones — and returns the move with the largest
// marginal benefit (Eq. 10 for upgrades: JCT saved per dollar added; the
// mirror for cheapening: dollars saved per second added).
func (pl *Planner) bestMove(p Result, stages []int, upgrade bool, evaluate func(Plan) Result) (Result, bool) {
	r, _, ok := pl.bestMoveStage(p, stages, upgrade, evaluate)
	return r, ok
}

func (pl *Planner) bestMoveStage(p Result, stages []int, upgrade bool, evaluate func(Plan) Result) (Result, int, bool) {
	// Two tiers: win-win moves (better in both dimensions) are preferred
	// and ranked by their objective gain; otherwise rank trades by their
	// marginal-benefit ratio (Eq. 10 / Eq. 12).
	bestBenefit := -math.Inf(1)
	bestWinWin := -math.Inf(1)
	var best Result
	bestStage := -1
	consider := func(r Result, i int) {
		var winGain, benefit float64
		if upgrade {
			if r.Cost <= p.Cost && r.JCT < p.JCT {
				winGain = p.JCT - r.JCT
			}
			benefit = (p.JCT - r.JCT) / math.Max(r.Cost-p.Cost, 1e-9)
		} else {
			if r.JCT <= p.JCT && r.Cost < p.Cost {
				winGain = p.Cost - r.Cost
			}
			benefit = (p.Cost - r.Cost) / math.Max(r.JCT-p.JCT, 1e-9)
		}
		switch {
		case winGain > 0 && winGain > bestWinWin:
			bestWinWin, best, bestStage = winGain, r, i
		case bestWinWin > 0:
			// A win-win exists; trades no longer compete.
		case benefit > bestBenefit:
			bestBenefit, best, bestStage = benefit, r, i
		}
	}
	for _, i := range stages {
		for _, cand := range pl.moveCandidates(p.Plan, i, upgrade) {
			consider(evaluate(cand), i)
		}
	}
	if bestStage < 0 {
		return Result{}, -1, false
	}
	return best, bestStage, true
}
