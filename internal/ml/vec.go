package ml

import "math"

// The vector kernels below are loop-structured for speed (4-way unrolling
// with explicit bounds-check elimination) but deliberately preserve the
// exact left-to-right summation order of the naive loops: every accumulator
// chain folds elements in index order, so results are bit-identical to the
// straightforward implementation and experiment outputs stay stable.

// Dot returns the inner product of a and b; the slices must have equal
// length (callers guarantee this; a mismatch panics via bounds checks).
func Dot(a, b []float64) float64 {
	b = b[:len(a)]
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += a[i] * b[i]
		s += a[i+1] * b[i+1]
		s += a[i+2] * b[i+2]
		s += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// dot4 returns the four inner products of w against r0..r3 in one pass.
// Each product uses its own accumulator folded in index order, so every
// result is bit-identical to Dot(w, rK); interleaving the four independent
// chains hides the floating-point add latency a single dot product is
// bound by.
func dot4(w, r0, r1, r2, r3 []float64) (s0, s1, s2, s3 float64) {
	n := len(w)
	r0, r1, r2, r3 = r0[:n], r1[:n], r2[:n], r3[:n]
	for i, v := range w {
		s0 += v * r0[i]
		s1 += v * r1[i]
		s2 += v * r2[i]
		s3 += v * r3[i]
	}
	return
}

// Axpy computes y += alpha * x in place.
func Axpy(alpha float64, x, y []float64) {
	y = y[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// axpy4 computes y += a0*x0 + a1*x1 + a2*x2 + a3*x3 in one pass. Per
// element the four contributions are added in x0..x3 order, matching four
// sequential Axpy calls bit for bit.
func axpy4(a0, a1, a2, a3 float64, x0, x1, x2, x3, y []float64) {
	n := len(y)
	x0, x1, x2, x3 = x0[:n], x1[:n], x2[:n], x3[:n]
	for i := range y {
		v := y[i]
		v += a0 * x0[i]
		v += a1 * x1[i]
		v += a2 * x2[i]
		v += a3 * x3[i]
		y[i] = v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x[i] *= alpha
		x[i+1] *= alpha
		x[i+2] *= alpha
		x[i+3] *= alpha
	}
	for ; i < len(x); i++ {
		x[i] *= alpha
	}
}

// Zero clears x in place.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}

// Add computes y += x element-wise in place.
func Add(x, y []float64) {
	y = y[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += x[i]
		y[i+1] += x[i+1]
		y[i+2] += x[i+2]
		y[i+3] += x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += x[i]
	}
}

// Sigmoid returns 1/(1+e^-z), computed stably for large |z|.
func Sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Log1pExp returns log(1 + e^z) without overflow.
func Log1pExp(z float64) float64 {
	if z > 30 {
		return z
	}
	if z < -30 {
		return math.Exp(z)
	}
	return math.Log1p(math.Exp(z))
}
