package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 3 {
		t.Errorf("Now = %v, want 3", s.Now())
	}
}

func TestSimultaneousEventsFIFOWithinPriority(t *testing.T) {
	s := New(1)
	var order []int
	s.Schedule(5, func() { order = append(order, 0) })
	s.Schedule(5, func() { order = append(order, 1) })
	s.SchedulePriority(5, -1, func() { order = append(order, 2) })
	s.Run()
	want := []int{2, 0, 1}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestScheduleAfterAccumulates(t *testing.T) {
	s := New(1)
	var times []Time
	s.ScheduleAfter(1, func() {
		times = append(times, s.Now())
		s.ScheduleAfter(2.5, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3.5 {
		t.Fatalf("times = %v, want [1 3.5]", times)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	ran := false
	e := s.Schedule(1, func() { ran = true })
	e.Cancel()
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	s.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	if s.EventsFired() != 0 {
		t.Fatalf("EventsFired = %d, want 0", s.EventsFired())
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4} {
		at := at
		s.Schedule(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 2.5 {
		t.Fatalf("Now = %v, want 2.5", s.Now())
	}
	s.RunUntil(10)
	if len(fired) != 4 {
		t.Fatalf("fired %d events, want 4", len(fired))
	}
}

func TestStep(t *testing.T) {
	s := New(1)
	n := 0
	s.Schedule(1, func() { n++ })
	s.Schedule(2, func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatalf("after one step n = %d", n)
	}
	if !s.Step() || n != 2 {
		t.Fatalf("after two steps n = %d", n)
	}
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for past scheduling")
		}
	}()
	s := New(1)
	s.Schedule(5, func() {
		s.Schedule(4, func() {})
	})
	s.Run()
}

func TestScheduleNonFinitePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for NaN time")
		}
	}()
	s := New(1)
	s.Schedule(Time(math.NaN()), func() {})
}

func TestNamedRandStreamsIndependentAndStable(t *testing.T) {
	a1 := New(42).Rand("alpha")
	a2 := New(42).Rand("alpha")
	b := New(42).Rand("beta")
	var sawDiff bool
	for i := 0; i < 100; i++ {
		x, y, z := a1.Uint64(), a2.Uint64(), b.Uint64()
		if x != y {
			t.Fatalf("same stream diverged at %d: %d vs %d", i, x, y)
		}
		if x != z {
			sawDiff = true
		}
	}
	if !sawDiff {
		t.Fatal("streams alpha and beta produced identical sequences")
	}
}

func TestRandSameStreamHandleReused(t *testing.T) {
	s := New(7)
	if s.Rand("x") != s.Rand("x") {
		t.Fatal("Rand returned distinct handles for the same name")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(3)
	if err := quick.Check(func(_ int) bool {
		f := r.Float64()
		return f >= 0 && f < 1
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRand(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %g, want ~1", variance)
	}
}

func TestLogNormalMedianNearOne(t *testing.T) {
	r := NewRand(11)
	const n = 100001
	vals := make([]float64, n)
	below := 0
	for i := range vals {
		vals[i] = r.LogNormal(0, 0.3)
		if vals[i] < 1 {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.47 || frac > 0.53 {
		t.Errorf("fraction below 1 = %g, want ~0.5", frac)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(13)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(2.5)
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Errorf("mean = %g, want ~2.5", mean)
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRand(17)
	for i := 0; i < 1000; i++ {
		j := r.Jitter(0.1)
		if j < 0.9 || j > 1.1 {
			t.Fatalf("Jitter(0.1) = %g out of [0.9, 1.1]", j)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(19)
	if err := quick.Check(func(raw uint8) bool {
		n := int(raw%32) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEventsInterleaveDeterministically(t *testing.T) {
	run := func() []Time {
		s := New(5)
		var trace []Time
		var tick func()
		tick = func() {
			trace = append(trace, s.Now())
			if s.Now() < 10 {
				s.ScheduleAfter(1+s.Rand("tick").Float64(), tick)
			}
		}
		s.ScheduleAfter(0, tick)
		s.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic trace at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
