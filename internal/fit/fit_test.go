package fit

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func genInverseLinear(a, b, c, noise float64, n int, seed uint64) (xs, ys []float64) {
	rng := sim.NewRand(seed)
	m := InverseLinear{}
	for e := 1; e <= n; e++ {
		x := float64(e)
		xs = append(xs, x)
		ys = append(ys, m.Eval([]float64{a, b, c}, x)+noise*rng.NormFloat64())
	}
	return xs, ys
}

func TestFitRecoversCleanInverseLinear(t *testing.T) {
	xs, ys := genInverseLinear(0.3, 0.8, 0.5, 0, 30, 1)
	res, err := Fit(InverseLinear{}, xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.3, 0.8, 0.5}
	for i, w := range want {
		if math.Abs(res.Params[i]-w) > 1e-4 {
			t.Errorf("param %d = %g, want %g", i, res.Params[i], w)
		}
	}
	if res.RMSE > 1e-6 {
		t.Errorf("RMSE = %g on clean data", res.RMSE)
	}
}

func TestFitNoisyInverseLinear(t *testing.T) {
	xs, ys := genInverseLinear(0.2, 1.0, 0.6, 0.01, 40, 2)
	res, err := Fit(InverseLinear{}, xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The floor c is the critical parameter for epoch prediction.
	if math.Abs(res.Params[2]-0.6) > 0.05 {
		t.Errorf("floor c = %g, want ~0.6", res.Params[2])
	}
	if res.RMSE > 0.05 {
		t.Errorf("RMSE = %g too high", res.RMSE)
	}
}

func TestFitRecoversPowerLaw(t *testing.T) {
	m := PowerLaw{}
	truth := []float64{2.0, 0.7, 0.3}
	var xs, ys []float64
	for e := 1; e <= 25; e++ {
		xs = append(xs, float64(e))
		ys = append(ys, m.Eval(truth, float64(e)))
	}
	res, err := Fit(m, xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range truth {
		if math.Abs(res.Params[i]-w) > 1e-3 {
			t.Errorf("param %d = %g, want %g", i, res.Params[i], w)
		}
	}
}

func TestFitInsufficientData(t *testing.T) {
	if _, err := Fit(InverseLinear{}, []float64{1, 2}, []float64{1, 0.9}, Options{}); err == nil {
		t.Error("expected ErrInsufficientData")
	}
}

func TestFitLengthMismatch(t *testing.T) {
	if _, err := Fit(InverseLinear{}, []float64{1, 2, 3}, []float64{1}, Options{}); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestFitImprovesOnGuess(t *testing.T) {
	xs, ys := genInverseLinear(0.15, 2, 0.45, 0.02, 20, 3)
	m := InverseLinear{}
	guess := m.Guess(xs, ys)
	m.Clamp(guess)
	guessSSE := sumSquares(m, guess, xs, ys)
	res, err := Fit(m, xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SSE > guessSSE+1e-12 {
		t.Errorf("fit SSE %g worse than guess SSE %g", res.SSE, guessSSE)
	}
}

func TestClampEnforcesPositivity(t *testing.T) {
	p := []float64{-1, -5, 0.2}
	InverseLinear{}.Clamp(p)
	if p[0] <= 0 || p[1] <= 0 {
		t.Errorf("Clamp left non-positive params: %v", p)
	}
	q := []float64{-1, 99, 0}
	PowerLaw{}.Clamp(q)
	if q[0] <= 0 || q[1] > 5 {
		t.Errorf("PowerLaw Clamp failed: %v", q)
	}
}

func TestJacobianMatchesNumerical(t *testing.T) {
	models := []Model{InverseLinear{}, PowerLaw{}}
	params := [][]float64{{0.3, 0.9, 0.5}, {1.5, 0.8, 0.2}}
	for mi, m := range models {
		p := params[mi]
		for _, x := range []float64{1, 3, 10, 50} {
			jac := make([]float64, m.NumParams())
			m.Jacobian(p, x, jac)
			const h = 1e-6
			for i := range p {
				pp := append([]float64(nil), p...)
				pm := append([]float64(nil), p...)
				pp[i] += h
				pm[i] -= h
				num := (m.Eval(pp, x) - m.Eval(pm, x)) / (2 * h)
				if math.Abs(num-jac[i]) > 1e-4*(1+math.Abs(num)) {
					t.Errorf("model %d x=%g: jac[%d]=%g, numerical %g", mi, x, i, jac[i], num)
				}
			}
		}
	}
}

func TestSolveForX(t *testing.T) {
	p := []float64{0.2, 1.0, 0.5}
	m := InverseLinear{}
	x, ok := SolveForX(p, 0.7)
	if !ok {
		t.Fatal("SolveForX failed")
	}
	if got := m.Eval(p, x); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("Eval at solved x = %g, want 0.7", got)
	}
	if _, ok := SolveForX(p, 0.5); ok {
		t.Error("target at asymptote should be unreachable")
	}
	if _, ok := SolveForX(p, 0.3); ok {
		t.Error("target below asymptote should be unreachable")
	}
	// Targets already met at x<1 clamp to 1.
	if x, ok := SolveForX(p, 100); !ok || x != 1 {
		t.Errorf("huge target: x=%g ok=%v, want 1 true", x, ok)
	}
}

func TestSolveForXRoundTripProperty(t *testing.T) {
	m := InverseLinear{}
	if err := quick.Check(func(ar, br, cr, tr uint16) bool {
		a := 0.01 + float64(ar)/65535
		b := 0.1 + float64(br)/65535*5
		c := float64(cr) / 65535
		target := c + 0.01 + float64(tr)/65535
		x, ok := SolveForX([]float64{a, b, c}, target)
		if !ok {
			return false
		}
		if x == 1 {
			return m.Eval([]float64{a, b, c}, 1) <= target+1e-9
		}
		return math.Abs(m.Eval([]float64{a, b, c}, x)-target) < 1e-6
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFitDeterministic(t *testing.T) {
	xs, ys := genInverseLinear(0.25, 1.2, 0.4, 0.02, 30, 9)
	r1, err1 := Fit(InverseLinear{}, xs, ys, Options{})
	r2, err2 := Fit(InverseLinear{}, xs, ys, Options{})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range r1.Params {
		if r1.Params[i] != r2.Params[i] {
			t.Fatal("Fit is not deterministic")
		}
	}
}

func TestSolveDampedSingular(t *testing.T) {
	a := [][]float64{{0, 0}, {0, 0}}
	b := []float64{1, 1}
	if _, ok := solveDamped(a, b, 0); ok {
		t.Error("singular, undamped system should fail")
	}
	if x, ok := solveDamped(a, b, 1); !ok || len(x) != 2 {
		t.Error("damping should regularize the zero matrix")
	}
}

// TestSolveForXDegenerateTargetNearAsymptote is the regression test for the
// (+Inf, true) leak: a target epsilon above the asymptote c makes
// 1/(target-c) explode, and the pre-fix code returned that non-finite or
// astronomically large x with ok=true, violating the "smallest x >= 1 or
// ok=false" contract.
func TestSolveForXDegenerateTargetNearAsymptote(t *testing.T) {
	// c = 0 keeps a 1e-300 gap representable (for c = 0.5 it would round
	// away below one ulp): 1/(target-c) = 1e300, an absurd finite x the
	// pre-fix code returned with ok=true.
	if x, ok := SolveForX([]float64{0.2, 1.0, 0}, 1e-300); ok {
		t.Fatalf("target=c+1e-300 solved: x=%g, want ok=false", x)
	}
	// Subnormal gap: 1/(target-c) overflows to +Inf outright.
	if x, ok := SolveForX([]float64{0.2, 1.0, 0}, 5e-324); ok {
		t.Fatalf("target=c+5e-324 solved: x=%g, want ok=false", x)
	}
	p := []float64{0.2, 1.0, 0.5}
	if x, ok := SolveForX(p, 0.5+1e-12); ok {
		// 1/(1e-12) = 1e12 > MaxSolvableX: finite but absurd.
		t.Fatalf("target=c+1e-12 solved: x=%g, want ok=false", x)
	}
	// Just inside the bound stays solvable and finite.
	x, ok := SolveForX(p, 0.5+1e-6)
	if !ok {
		t.Fatal("reasonable target near asymptote must stay solvable")
	}
	if math.IsInf(x, 0) || math.IsNaN(x) || x > MaxSolvableX || x < 1 {
		t.Fatalf("solved x=%g outside (1, MaxSolvableX]", x)
	}
}

// TestSolveForXAlwaysFiniteProperty: for any parameters and target, SolveForX
// either fails or returns a finite x in [1, MaxSolvableX].
func TestSolveForXAlwaysFiniteProperty(t *testing.T) {
	if err := quick.Check(func(ar, br, cr uint16, exp uint8) bool {
		a := float64(ar) / 65535
		b := float64(br) / 65535 * 5
		c := float64(cr) / 65535
		// Sweep the target gap across 40 orders of magnitude down to
		// denormal range.
		gap := math.Pow(10, -float64(exp%40))
		x, ok := SolveForX([]float64{a, b, c}, c+gap)
		if !ok {
			return true
		}
		return !math.IsNaN(x) && !math.IsInf(x, 0) && x >= 1 && x <= MaxSolvableX
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
