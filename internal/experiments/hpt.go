package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/planner"
	"repro/internal/sha"
	"repro/internal/storage"
	"repro/internal/trainer"
	"repro/internal/workload"
)

func init() {
	register("fig2", fig2)
	register("fig3", fig3)
	register("fig9", fig9)
	register("fig10", fig10)
	register("fig11", fig11)
	register("fig14", fig14)
	register("fig16", fig16)
	register("fig21a", fig21a)
}

// hptTrials is the scaled trial population (paper: 16384; see package doc).
const hptTrials = 256

const hptEpochsPerStage = 2

// hptSetup profiles a workload and derives binding reference constraints
// from its static optima.
type hptSetup struct {
	fw     *core.Framework
	stages []planner.Stage
	pl     *planner.Planner // over the Pareto set
	// cheapCost / cheapJCT: the cost-optimal static plan over S3-only
	// candidates (the baselines' native storage); referencing constraints
	// to the S3 static plan gives every system workable headroom, as the
	// paper's setup does.
	cheapCost, cheapJCT float64
	// fastJCT: the JCT-optimal S3 static plan's JCT.
	fastJCT float64
}

func newHPT(w *workload.Model, trials int) (*hptSetup, error) {
	fw := core.New(w)
	stages := planner.SHAStages(trials, 2, hptEpochsPerStage)
	pl, err := planner.New(fw.Model, stages, fw.Pareto)
	if err != nil {
		return nil, err
	}
	s3pl, err := planner.New(fw.Model, stages, baselines.FilterByStorage(fw.Full, storage.S3))
	if err != nil {
		return nil, err
	}
	cheap := s3pl.OptimalStatic(0, 1e15) // min cost, no deadline pressure
	fast := s3pl.OptimalStatic(1e15, 0)  // min JCT, no budget pressure
	return &hptSetup{
		fw: fw, stages: stages, pl: pl,
		cheapCost: cheap.Cost, cheapJCT: cheap.JCT, fastJCT: fast.JCT,
	}, nil
}

// budgetRef is the default binding budget: 30% above the cheapest S3
// static plan.
func (h *hptSetup) budgetRef() float64 { return h.cheapCost * 1.3 }

// qosRef is the default binding deadline: the geometric mean of the
// fastest and cheapest S3 static JCTs, clamped above the fastest.
func (h *hptSetup) qosRef() float64 {
	q := sqrtProduct(h.fastJCT, h.cheapJCT)
	if q < h.fastJCT*1.05 {
		q = h.fastJCT * 1.05
	}
	return q
}

func sqrtProduct(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return a
	}
	// math.Sqrt without importing math twice in this file's hot path.
	x := a * b
	guess := x
	for i := 0; i < 40; i++ {
		guess = (guess + x/guess) / 2
	}
	return guess
}

// execute runs a partitioning plan through the tuning driver. capN > 0
// limits per-stage concurrency (the Fixed baseline's equal share).
func (h *hptSetup) execute(plan planner.Plan, trials int, seed uint64, capN int) (*sha.Result, error) {
	return sha.Run(sha.Config{
		Workload: h.fw.Workload,
		Trials:   trials,
		Eta:      2, EpochsPerStage: hptEpochsPerStage,
		Plan:           plan,
		Runner:         trainer.NewRunner(seed),
		Seed:           seed,
		ConcurrencyCap: capN,
	})
}

// hptSystems runs the Fig. 9/10 system matrix for one model: CE-scaling,
// LambdaML (static), Siren and Fixed, under a budget (qos=0) or a QoS
// deadline (budget=0).
func (h *hptSetup) hptSystems(trials int, budget, qos float64, seed uint64) (map[string]*sha.Result, map[string]planner.Result, error) {
	plans := map[string]planner.Result{}

	var ce planner.Result
	if budget > 0 {
		ce = h.pl.PlanMinJCT(budget)
	} else {
		ce = h.pl.PlanMinCost(qos)
	}
	plans["CE-scaling"] = ce

	lam, err := baselines.LambdaMLPlan(h.fw.Model, h.stages, h.fw.Full, budget, qos)
	if err != nil {
		return nil, nil, err
	}
	plans["LambdaML"] = lam

	sir, err := baselines.SirenPlan(h.fw.Model, h.stages, h.fw.Full, budget, qos)
	if err != nil {
		return nil, nil, err
	}
	plans["Siren"] = sir

	plans["Fixed"] = h.pl.FixedPlan(budget, qos)

	// Planning above is serial (the systems share h.pl and its Evaluated
	// counter); the executions are independent — each gets a fresh Runner —
	// so they run as parallel cells merged back in system order.
	fixedCap := h.pl.ConcurrencyShare()
	results, err := cells(len(hptOrder), func(i int) (*sha.Result, error) {
		name := hptOrder[i]
		capN := 0
		if name == "Fixed" {
			capN = fixedCap
		}
		run, err := h.execute(plans[name].Plan, trials, seed, capN)
		return run, cellErr(name, err)
	})
	if err != nil {
		return nil, nil, err
	}
	runs := map[string]*sha.Result{}
	for i, name := range hptOrder {
		runs[name] = results[i]
	}
	return runs, plans, nil
}

var hptOrder = []string{"CE-scaling", "LambdaML", "Siren", "Fixed"}

// fig9 — execution time of hyperparameter tuning given a budget.
func fig9(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "fig9",
		Title:   "HPT JCT given a budget (executed on the simulated substrate)",
		Headers: []string{"model", "system", "JCT", "cost", "budget", "JCT vs LambdaML"},
		Notes:   fmt.Sprintf("%d trials (paper: 16384), eta=2, %d epochs/stage; budget = 1.3x cheapest static plan", hptTrials, hptEpochsPerStage),
	}
	models := workload.Evaluated()
	blocks, err := cells(len(models), func(i int) ([][]string, error) {
		w := models[i]
		h, err := newHPT(w, hptTrials)
		if err != nil {
			return nil, err
		}
		budget := h.budgetRef()
		runs, _, err := h.hptSystems(hptTrials, budget, 0, seed)
		if err != nil {
			return nil, cellErr(w.Name, err)
		}
		base := runs["LambdaML"].JCT
		var rows [][]string
		for _, sys := range hptOrder {
			r := runs[sys]
			rows = append(rows, []string{
				w.Name, sys, seconds(r.JCT), dollars(r.TotalCost), dollars(budget),
				pct(reduction(base, r.JCT)),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range blocks {
		t.Rows = append(t.Rows, rows...)
	}
	return t, nil
}

// fig10 — cost of hyperparameter tuning given a QoS constraint.
func fig10(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "fig10",
		Title:   "HPT cost given a QoS constraint (executed)",
		Headers: []string{"model", "system", "cost", "JCT", "QoS", "cost vs LambdaML"},
		Notes:   fmt.Sprintf("%d trials; QoS = geometric mean of fastest/cheapest static JCT", hptTrials),
	}
	models := workload.Evaluated()
	blocks, err := cells(len(models), func(i int) ([][]string, error) {
		w := models[i]
		h, err := newHPT(w, hptTrials)
		if err != nil {
			return nil, err
		}
		qos := h.qosRef()
		runs, _, err := h.hptSystems(hptTrials, 0, qos, seed)
		if err != nil {
			return nil, cellErr(w.Name, err)
		}
		base := runs["LambdaML"].TotalCost
		var rows [][]string
		for _, sys := range hptOrder {
			r := runs[sys]
			rows = append(rows, []string{
				w.Name, sys, dollars(r.TotalCost), seconds(r.JCT), seconds(qos),
				pct(reduction(base, r.TotalCost)),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range blocks {
		t.Rows = append(t.Rows, rows...)
	}
	return t, nil
}

// fig11 — normalized per-trial budget per stage for LR-Higgs.
func fig11(seed uint64) (*Table, error) {
	w := workload.LRHiggs()
	h, err := newHPT(w, 512)
	if err != nil {
		return nil, err
	}
	budget := h.budgetRef()
	ce := h.pl.PlanMinJCT(budget)
	static, err := baselines.LambdaMLPlan(h.fw.Model, h.stages, h.fw.Full, budget, 0)
	if err != nil {
		return nil, err
	}
	fixed := h.pl.FixedPlan(budget, 0)

	perTrial := func(res planner.Result, i int) float64 {
		return h.pl.StageCost(i, res.Plan.Stages[i]) / float64(h.stages[i].Trials)
	}
	t := &Table{
		ID:      "fig11",
		Title:   "Per-trial allocated budget per stage, LR-Higgs (normalized to the static plan)",
		Headers: []string{"stage", "trials", "static", "CE-scaling", "Fixed"},
		Notes:   "512 trials (paper: 16384); values are per-trial stage cost / static per-trial stage cost",
	}
	var staticFirstTwo, staticTotal float64
	for i := range h.stages {
		base := perTrial(static, i)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", h.stages[i].Trials),
			"1.00",
			f2(perTrial(ce, i) / base),
			f2(perTrial(fixed, i) / base),
		})
		stageTotal := base * float64(h.stages[i].Trials)
		staticTotal += stageTotal
		if i < 2 {
			staticFirstTwo += stageTotal
		}
	}
	t.Notes += fmt.Sprintf("; static spends %s of its budget in the first two stages", pct(staticFirstTwo/staticTotal))
	_ = seed
	return t, nil
}

// fig2 — the Successive-Halving procedure itself: a 32-trial tuning run
// with per-stage survivor counts and losses, mirroring the paper's worked
// example of repeatedly terminating the bottom-performing trials.
func fig2(seed uint64) (*Table, error) {
	w := workload.MobileNet()
	fw := core.New(w)
	stages := planner.SHAStages(32, 2, 2)
	pl, err := planner.New(fw.Model, stages, fw.Pareto)
	if err != nil {
		return nil, err
	}
	static := pl.OptimalStatic(0, 1e15)
	run, err := sha.Run(sha.Config{
		Workload: w, Trials: 32, Eta: 2, EpochsPerStage: 2,
		Plan: static.Plan, Runner: trainer.NewRunner(seed), Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig2",
		Title:   "An early-stopping SHA tuning run (MobileNet, 32 trials, reduction factor 2)",
		Headers: []string{"stage", "running trials", "epochs each", "stage best loss", "stage wall time", "stage cost"},
		Notes:   fmt.Sprintf("winner: trial %d with lr=%.5f (loss %.4f after %d epochs)", run.BestTrial.ID, run.BestTrial.HP.LR, run.BestTrial.Loss, run.BestTrial.Epochs),
	}
	for _, st := range run.Stages {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", st.Stage+1),
			fmt.Sprintf("%d", st.Trials),
			fmt.Sprintf("%d", stages[st.Stage].Epochs),
			f4(st.BestLoss),
			seconds(st.WallTime),
			dollars(st.Cost),
		})
	}
	return t, nil
}

// fig3 — the motivating reallocation example (5 stages): a static plan vs
// recycling resources from stage 1 to later stages at CE-scaling's measured
// pace ("mild") and far beyond it ("aggressive"). Mild recycling cuts the
// total JCT; over-recycling collapses stage 1 into resource competition and
// backfires — the paper's Finding 1.
func fig3(seed uint64) (*Table, error) {
	w := workload.MobileNet()
	fw := core.New(w)
	const trials, eta = 512, 4 // 512 -> 128 -> 32 -> 8 -> 2: five stages
	stages := planner.SHAStages(trials, eta, 2)
	pl, err := planner.New(fw.Model, stages, fw.Pareto)
	if err != nil {
		return nil, err
	}
	cheapest := pl.OptimalStatic(0, 1e15)
	budget := cheapest.Cost * 1.3
	static := pl.OptimalStatic(budget, 0)

	// Mild: CE-scaling's own cost-neutral recycling.
	mild := pl.PlanMinJCT(static.Cost)

	// Aggressive: push stage 1 all the way to the slowest/cheapest
	// allocation regardless of the damage.
	aggressive := mild.Plan.Clone()
	aggressive.Stages[0] = pl.P[len(pl.P)-1].Alloc

	plans := []struct {
		name string
		plan planner.Plan
	}{
		{"static", static.Plan},
		{"recycle (CE)", mild.Plan},
		{"over-recycle", aggressive},
	}
	t := &Table{
		ID:      "fig3",
		Title:   "Per-stage JCT: static vs recycling stage-1 resources (MobileNet, 512 trials, 5 stages)",
		Headers: []string{"plan", "stage1", "stage2", "stage3", "stage4", "stage5", "total JCT", "cost"},
		Notes:   "recycle (CE) = the greedy planner's cost-neutral reallocation; over-recycle forces stage 1 to the slowest allocation (the paper's 30% case)",
	}
	rows, err := cells(len(plans), func(i int) ([]string, error) {
		p := plans[i]
		run, err := sha.Run(sha.Config{
			Workload: w, Trials: trials, Eta: eta, EpochsPerStage: 2,
			Plan: p.plan, Runner: trainer.NewRunner(seed), Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		row := []string{p.name}
		for _, st := range run.Stages {
			row = append(row, seconds(st.WallTime))
		}
		return append(row, seconds(run.JCT), dollars(run.TotalCost)), nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}

// fig14 — HPT for LR-YFCC under varying budget and QoS constraints.
func fig14(seed uint64) (*Table, error) {
	w := workload.LRYFCC()
	h, err := newHPT(w, 128)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig14",
		Title:   "HPT under varying constraints, LR-YFCC (executed)",
		Headers: []string{"constraint", "system", "JCT", "cost"},
		Notes:   "128 trials; budget multiples of the cheapest static plan, QoS multiples of the fastest static JCT",
	}
	for _, mult := range []float64{1.1, 1.3, 1.6, 2.0} {
		budget := h.cheapCost * mult
		runs, _, err := h.hptSystems(128, budget, 0, seed)
		if err != nil {
			return nil, err
		}
		for _, sys := range hptOrder {
			r := runs[sys]
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("budget %.1fx", mult), sys, seconds(r.JCT), dollars(r.TotalCost),
			})
		}
	}
	for _, mult := range []float64{1.2, 1.5, 2.0, 3.0} {
		qos := h.fastJCT * mult
		runs, _, err := h.hptSystems(128, 0, qos, seed)
		if err != nil {
			return nil, err
		}
		for _, sys := range hptOrder {
			r := runs[sys]
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("QoS %.1fx", mult), sys, seconds(r.JCT), dollars(r.TotalCost),
			})
		}
	}
	return t, nil
}

// fig16 — CE-scaling vs Siren vs Cirrus under the same pinned storage for
// hyperparameter tuning (MobileNet-Cifar10).
func fig16(seed uint64) (*Table, error) {
	w := workload.MobileNet()
	h, err := newHPT(w, hptTrials)
	if err != nil {
		return nil, err
	}
	budget := h.budgetRef()
	t := &Table{
		ID:      "fig16",
		Title:   "HPT with all systems pinned to the same storage, MobileNet-Cifar10 (executed)",
		Headers: []string{"storage", "system", "JCT", "cost"},
		Notes:   fmt.Sprintf("%d trials; budget = 1.3x cheapest static plan", hptTrials),
	}
	for _, kind := range []storage.Kind{storage.S3, storage.VMPS} {
		k := kind
		// CE pinned: plan over the pinned candidate set.
		cePlan, _, err := h.fw.PlanHPT(hptTrials, 2, hptEpochsPerStage, core.Options{Budget: budget, PinStorage: &k, Seed: seed})
		if err != nil {
			return nil, err
		}
		sirPlan, err := baselines.SirenPlanPinned(h.fw.Model, h.stages, h.fw.Full, kind, budget, 0)
		if err != nil {
			return nil, err
		}
		cirPlan, err := baselines.StaticPlanPinned(h.fw.Model, h.stages, h.fw.Full, kind, budget, 0)
		if err != nil {
			return nil, err
		}
		systems := []struct {
			name string
			plan planner.Plan
		}{{"CE-scaling", cePlan.Plan}, {"Siren", sirPlan.Plan}, {"Cirrus", cirPlan.Plan}}
		rows, err := cells(len(systems), func(i int) ([]string, error) {
			run, err := h.execute(systems[i].plan, hptTrials, seed, 0)
			if err != nil {
				return nil, cellErr(systems[i].name, err)
			}
			return []string{kind.String(), systems[i].name, seconds(run.JCT), dollars(run.TotalCost)}, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, rows...)
	}
	return t, nil
}

// fig21a — planner scheduling overhead: CE-scaling vs WO-pa (full search).
func fig21a(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "fig21a",
		Title:   "HPT planning overhead: Pareto-pruned vs full allocation search (WO-pa)",
		Headers: []string{"model", "variant", "candidates evaluated", "modeled overhead", "search space"},
		Notes:   "modeled overhead = candidates x 50ms estimation latency (the paper's seconds-level budget); search space = candidate allocations the planner scores per decision (|P| after Pareto pruning vs the full |Theta|)",
	}
	models := workload.Evaluated()
	blocks, err := cells(len(models), func(i int) ([][]string, error) {
		w := models[i]
		fw := core.New(w)
		var rows [][]string
		for _, variant := range []struct {
			name    string
			disable bool
		}{{"CE-scaling", false}, {"WO-pa", true}} {
			res, _, err := fw.PlanHPT(hptTrials, 2, hptEpochsPerStage, core.Options{
				Budget:        1e15,
				DisablePareto: variant.disable,
				Seed:          seed,
			})
			if err != nil {
				return nil, err
			}
			space := len(fw.Pareto)
			if variant.disable {
				space = len(fw.Full)
			}
			rows = append(rows, []string{
				w.Name, variant.name,
				fmt.Sprintf("%d", res.Evaluated),
				seconds(float64(res.Evaluated) * 0.05),
				fmt.Sprintf("%d", space),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range blocks {
		t.Rows = append(t.Rows, rows...)
	}
	return t, nil
}
