package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// runCollected runs experiment id with a fresh collector at engine
// parallelism p and returns the rendered table plus the exported trace and
// metrics bytes.
func runCollected(t *testing.T, id string, seed uint64, p int) (table string, trace, metrics []byte) {
	t.Helper()
	withParallelism(t, p)
	c := obs.NewCollector()
	SetCollector(c)
	t.Cleanup(func() { SetCollector(nil) })
	tab, err := Run(id, seed)
	if err != nil {
		t.Fatalf("Run(%s): %v", id, err)
	}
	var tb, mb bytes.Buffer
	if err := obs.WriteTrace(&tb, "trace.json", c.Scopes()); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if err := obs.WriteMetricsJSON(&mb, c.Scopes()); err != nil {
		t.Fatalf("WriteMetricsJSON: %v", err)
	}
	return tab.String(), tb.Bytes(), mb.Bytes()
}

// The tentpole guarantee: the exported trace and metrics are byte-identical
// whether the experiment matrix ran serially or on eight workers, and
// collection does not perturb the table output.
func TestTraceBytesIdenticalAcrossParallelism(t *testing.T) {
	const id, seed = "fig21b", 7
	serialTab, serialTrace, serialMetrics := runCollected(t, id, seed, 1)
	parTab, parTrace, parMetrics := runCollected(t, id, seed, 8)

	if serialTab != parTab {
		t.Errorf("table output differs between -parallel 1 and 8")
	}
	if !bytes.Equal(serialTrace, parTrace) {
		t.Errorf("trace bytes differ between -parallel 1 and 8 (serial %d bytes, parallel %d bytes)",
			len(serialTrace), len(parTrace))
	}
	if !bytes.Equal(serialMetrics, parMetrics) {
		t.Errorf("metrics bytes differ between -parallel 1 and 8")
	}

	// Collection off entirely must not move the table either.
	withParallelism(t, 8)
	tab, err := Run(id, seed)
	if err != nil {
		t.Fatalf("Run(%s) without collector: %v", id, err)
	}
	if tab.String() != serialTab {
		t.Errorf("table output differs with tracing off vs on")
	}

	// The trace must actually contain the instrumented layers.
	for _, want := range []string{"fig21b/CE-scaling", `"cat":"scheduler"`, `"cat":"trainer"`, `"cat":"faas"`} {
		if !strings.Contains(string(serialTrace), want) {
			t.Errorf("trace missing %q", want)
		}
	}
}
