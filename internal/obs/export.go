package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Exporters. Both formats are deterministic byte-for-byte: scopes are
// emitted in sorted-name order, events within a scope in their (single
// writer, deterministic) recording order, args via encoding/json whose map
// keys are always sorted. Timestamps are converted seconds → microseconds
// for the Chrome trace-event format; Perfetto and chrome://tracing load the
// resulting file directly.

// jsonlEvent is one line of the JSONL event log.
type jsonlEvent struct {
	Scope   string         `json:"scope,omitempty"`
	T       float64        `json:"t"`
	Dur     float64        `json:"dur,omitempty"`
	Track   string         `json:"track"`
	Cat     string         `json:"cat"`
	Name    string         `json:"name"`
	Instant bool           `json:"instant,omitempty"`
	Args    map[string]any `json:"args,omitempty"`
}

func argsMap(args []Arg) map[string]any {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]any, len(args))
	for _, a := range args {
		m[a.Key] = a.value()
	}
	return m
}

// WriteJSONL writes every scope's events as one JSON object per line.
func WriteJSONL(w io.Writer, scopes []NamedScope) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sc := range scopes {
		for _, ev := range sc.Obs.Trace().Events() {
			line := jsonlEvent{
				Scope:   sc.Name,
				T:       ev.Time,
				Dur:     ev.Dur,
				Track:   ev.Track,
				Cat:     ev.Cat,
				Name:    ev.Name,
				Instant: ev.Instant,
				Args:    argsMap(ev.Args),
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// chromeSpan / chromeInstant / chromeMeta are trace-event records. Field
// order is the struct declaration order, which keeps the output stable.
type chromeSpan struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeInstant struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// WriteChromeTrace writes the scopes as a Chrome trace-event JSON document
// loadable in Perfetto. Each scope becomes a process (pid = sorted-scope
// index), each track within a scope a thread (tid = first-appearance
// order); metadata events name both so the UI shows scope and track labels.
func WriteChromeTrace(w io.Writer, scopes []NamedScope) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !first {
			if _, err := io.WriteString(bw, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}
	for pid, sc := range scopes {
		pname := sc.Name
		if pname == "" {
			pname = "trace"
		}
		if err := emit(chromeMeta{Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": pname}}); err != nil {
			return err
		}
		events := sc.Obs.Trace().Events()
		tids := make(map[string]int)
		for _, ev := range events {
			tid, ok := tids[ev.Track]
			if !ok {
				tid = len(tids)
				tids[ev.Track] = tid
				if err := emit(chromeMeta{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
					Args: map[string]any{"name": ev.Track}}); err != nil {
					return err
				}
			}
			ts := ev.Time * 1e6 // seconds → microseconds
			if ev.Instant {
				if err := emit(chromeInstant{Name: ev.Name, Cat: ev.Cat, Ph: "i", Ts: ts,
					Pid: pid, Tid: tid, S: "t", Args: argsMap(ev.Args)}); err != nil {
					return err
				}
			} else {
				if err := emit(chromeSpan{Name: ev.Name, Cat: ev.Cat, Ph: "X", Ts: ts,
					Dur: ev.Dur * 1e6, Pid: pid, Tid: tid, Args: argsMap(ev.Args)}); err != nil {
					return err
				}
			}
		}
	}
	if _, err := io.WriteString(bw, "\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// scopeMetrics is one scope's metrics snapshot in the metrics JSON document.
type scopeMetrics struct {
	Scope   string   `json:"scope"`
	Metrics Snapshot `json:"metrics"`
}

// WriteMetricsJSON writes every scope's metrics snapshot as an indented
// JSON document, scopes in sorted-name order, keys within each snapshot
// sorted by the registry.
func WriteMetricsJSON(w io.Writer, scopes []NamedScope) error {
	doc := make([]scopeMetrics, 0, len(scopes))
	for _, sc := range scopes {
		doc = append(doc, scopeMetrics{Scope: sc.Name, Metrics: sc.Obs.Stats().Snapshot()})
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}

// WriteTrace writes scopes to w in the format implied by path's extension:
// ".jsonl" selects the JSONL event log, anything else the Chrome
// trace-event JSON.
func WriteTrace(w io.Writer, path string, scopes []NamedScope) error {
	if strings.HasSuffix(path, ".jsonl") {
		return WriteJSONL(w, scopes)
	}
	return WriteChromeTrace(w, scopes)
}

// Single-observer conveniences for cescale's run mode, where there is one
// logical scope.

// WriteTrace writes the observer's events to w, format chosen from path's
// extension as in the package-level WriteTrace.
func (o *Observer) WriteTrace(w io.Writer, path string) error {
	if o == nil {
		return fmt.Errorf("obs: cannot export from a disabled observer")
	}
	return WriteTrace(w, path, []NamedScope{{Name: "cescale", Obs: o}})
}

// WriteMetrics writes the observer's metrics snapshot to w.
func (o *Observer) WriteMetrics(w io.Writer) error {
	if o == nil {
		return fmt.Errorf("obs: cannot export from a disabled observer")
	}
	return WriteMetricsJSON(w, []NamedScope{{Name: "cescale", Obs: o}})
}
