package storage

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestStorePutGet(t *testing.T) {
	st := NewStore()
	st.Put("a", []float64{1, 2, 3})
	got, ok := st.Get("a")
	if !ok {
		t.Fatal("Get missed after Put")
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Get = %v, want %v", got, want)
		}
	}
}

func TestStoreGetReturnsCopy(t *testing.T) {
	st := NewStore()
	st.Put("a", []float64{1})
	v, _ := st.Get("a")
	v[0] = 99
	again, _ := st.Get("a")
	if again[0] != 1 {
		t.Error("Get returned a live reference; mutation leaked into the store")
	}
}

func TestStorePutCopies(t *testing.T) {
	st := NewStore()
	src := []float64{5}
	st.Put("a", src)
	src[0] = -1
	v, _ := st.Get("a")
	if v[0] != 5 {
		t.Error("Put did not copy its input")
	}
}

func TestStoreMiss(t *testing.T) {
	st := NewStore()
	if _, ok := st.Get("missing"); ok {
		t.Fatal("Get of missing key reported ok")
	}
	if st.Stats().Misses != 1 {
		t.Errorf("Misses = %d, want 1", st.Stats().Misses)
	}
}

func TestStoreDeleteAndLen(t *testing.T) {
	st := NewStore()
	st.Put("a", []float64{1})
	st.Put("b", []float64{2})
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	st.Delete("a")
	st.Delete("nope") // no-op
	if st.Len() != 1 {
		t.Fatalf("Len after delete = %d, want 1", st.Len())
	}
	if _, ok := st.Get("a"); ok {
		t.Error("deleted key still present")
	}
}

func TestStoreClearKeepsCounters(t *testing.T) {
	st := NewStore()
	st.Put("a", []float64{1})
	st.Clear()
	if st.Len() != 0 {
		t.Error("Clear left keys behind")
	}
	if st.Stats().Puts != 1 {
		t.Error("Clear reset counters")
	}
}

func TestStoreStatsBytes(t *testing.T) {
	st := NewStore()
	st.Put("a", make([]float64, 10))
	st.Get("a")
	s := st.Stats()
	if s.BytesIn != 80 || s.BytesOut != 80 {
		t.Errorf("bytes in/out = %d/%d, want 80/80", s.BytesIn, s.BytesOut)
	}
}

func TestAggregateSums(t *testing.T) {
	st := NewStore()
	st.Put("g0", []float64{1, 2})
	st.Put("g1", []float64{10, 20})
	st.Put("g2", []float64{100, 200})
	sum, err := st.Aggregate([]string{"g0", "g1", "g2"})
	if err != nil {
		t.Fatal(err)
	}
	if sum[0] != 111 || sum[1] != 222 {
		t.Errorf("Aggregate = %v, want [111 222]", sum)
	}
}

func TestAggregateErrors(t *testing.T) {
	st := NewStore()
	st.Put("a", []float64{1})
	st.Put("bad", []float64{1, 2})
	if _, err := st.Aggregate(nil); err == nil {
		t.Error("Aggregate(nil) should error")
	}
	if _, err := st.Aggregate([]string{"missing"}); err == nil {
		t.Error("Aggregate with missing key should error")
	}
	if _, err := st.Aggregate([]string{"a", "missing"}); err == nil {
		t.Error("Aggregate with missing later key should error")
	}
	if _, err := st.Aggregate([]string{"a", "bad"}); err == nil {
		t.Error("Aggregate with mismatched lengths should error")
	}
}

func TestAggregateDoesNotMutateInputs(t *testing.T) {
	st := NewStore()
	st.Put("a", []float64{1})
	st.Put("b", []float64{2})
	if _, err := st.Aggregate([]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	a, _ := st.Get("a")
	if a[0] != 1 {
		t.Error("Aggregate mutated a stored vector")
	}
}

func TestAggregateMatchesManualSum(t *testing.T) {
	if err := quick.Check(func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		st := NewStore()
		keys := make([]string, 0, len(vals))
		var want float64
		for i, v := range vals {
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				return true
			}
			k := fmt.Sprintf("k%d", i)
			st.Put(k, []float64{v})
			keys = append(keys, k)
			want += v
		}
		sum, err := st.Aggregate(keys)
		if err != nil {
			return false
		}
		return math.Abs(sum[0]-want) <= 1e-9*(1+math.Abs(want))
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	st := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("w%d", w)
			for i := 0; i < 100; i++ {
				st.Put(key, []float64{float64(i)})
				if v, ok := st.Get(key); !ok || len(v) != 1 {
					t.Errorf("worker %d: bad read", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st.Len() != 8 {
		t.Errorf("Len = %d, want 8", st.Len())
	}
}
