package trainer

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/platform"
	"repro/internal/workload"
)

func mnAlloc() cost.Allocation {
	return cost.Allocation{N: 10, MemMB: 1769, Storage: platform.S3}
}

func newMNJob(r *Runner, alloc cost.Allocation, target float64, max int) Config {
	w := workload.MobileNet()
	return Config{
		Workload:   w,
		Engine:     w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 7),
		Alloc:      alloc,
		TargetLoss: target,
		MaxEpochs:  max,
	}
}

func TestRunConvergesToTarget(t *testing.T) {
	r := NewRunner(1)
	res, err := r.Run(newMNJob(r, mnAlloc(), 0.2, 300))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge; final loss %g after %d epochs", res.FinalLoss, res.Epochs)
	}
	if res.FinalLoss > 0.2 {
		t.Errorf("final loss %g above target", res.FinalLoss)
	}
	if res.JCT <= 0 || res.TotalCost <= 0 {
		t.Errorf("JCT=%g cost=%g must be positive", res.JCT, res.TotalCost)
	}
	if res.Epochs != len(res.Trace) {
		t.Errorf("Epochs=%d but trace has %d entries", res.Epochs, len(res.Trace))
	}
}

func TestResultAccounting(t *testing.T) {
	r := NewRunner(2)
	res, err := r.Run(newMNJob(r, mnAlloc(), 0.2, 300))
	if err != nil {
		t.Fatal(err)
	}
	// JCT decomposes into compute + sync + overhead.
	sum := res.ComputeTime + res.SyncTime + res.OverheadTime
	if math.Abs(sum-res.JCT) > 1e-6*res.JCT {
		t.Errorf("JCT %g != compute %g + sync %g + overhead %g",
			res.JCT, res.ComputeTime, res.SyncTime, res.OverheadTime)
	}
	// Cost decomposes into functions + storage + invocations.
	csum := res.FunctionCost + res.StorageCost + res.InvokeCost
	if math.Abs(csum-res.TotalCost) > 1e-9*res.TotalCost {
		t.Errorf("TotalCost %g != %g", res.TotalCost, csum)
	}
	// Trace epoch times sum to JCT minus overhead.
	var traceT float64
	for _, e := range res.Trace {
		traceT += e.Time
	}
	if math.Abs(traceT-(res.ComputeTime+res.SyncTime)) > 1e-6*traceT {
		t.Errorf("trace time %g != compute+sync %g", traceT, res.ComputeTime+res.SyncTime)
	}
}

func TestPlatformMeterAgreesWithResult(t *testing.T) {
	r := NewRunner(3)
	res, err := r.Run(newMNJob(r, mnAlloc(), 0.2, 300))
	if err != nil {
		t.Fatal(err)
	}
	m := r.Compute().Meter()
	if math.Abs(m.ComputeCost+m.InvokeCost-(res.FunctionCost+res.InvokeCost)) > 1e-9 {
		t.Errorf("platform bill %g != result function bill %g",
			m.ComputeCost+m.InvokeCost, res.FunctionCost+res.InvokeCost)
	}
	if r.Compute().InFlight() != 0 {
		t.Errorf("job left %d functions admitted", r.Compute().InFlight())
	}
}

func TestGroundTruthNearAnalyticWithoutNoise(t *testing.T) {
	r := NewRunner(4)
	r.Noise = NoNoise()
	w := workload.MobileNet()
	a := mnAlloc()
	res, err := r.RunEpochs(w, w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 1), a, 5)
	if err != nil {
		t.Fatal(err)
	}
	am := cost.NewModel(w)
	am.StragglerSigma = 0 // the runner's noise is off too
	wantEpoch := am.EpochTime(a)
	for _, e := range res.Trace {
		if math.Abs(e.Time-wantEpoch) > 1e-9*wantEpoch {
			t.Errorf("noiseless epoch time %g != analytic %g", e.Time, wantEpoch)
		}
	}
	wantCost := am.EpochCost(a)
	if e := res.Trace[2]; math.Abs(e.Cost-wantCost) > 1e-9*wantCost {
		t.Errorf("noiseless epoch cost %g != analytic %g", e.Cost, wantCost)
	}
}

func TestNoiseMakesEpochsVary(t *testing.T) {
	r := NewRunner(5)
	w := workload.MobileNet()
	res, err := r.RunEpochs(w, w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 1), mnAlloc(), 10)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Trace[0].Time
	varies := false
	for _, e := range res.Trace[1:] {
		if e.Time != first {
			varies = true
		}
	}
	if !varies {
		t.Error("noisy epochs should differ in wall time")
	}
}

func TestStragglerPenaltyGrowsWithN(t *testing.T) {
	// With more functions the BSP barrier waits for a worse straggler, so
	// mean epoch compute inflation grows with n.
	w := workload.LRHiggs()
	inflation := func(n int) float64 {
		r := NewRunner(6)
		a := cost.Allocation{N: n, MemMB: 1769, Storage: platform.S3}
		var sum float64
		const epochs = 30
		res, err := r.RunEpochs(w, w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 1), a, epochs)
		if err != nil {
			t.Fatal(err)
		}
		base := w.Dataset.PartitionSizeMB(n) * w.U(1769)
		for _, e := range res.Trace {
			sum += e.ComputeTime / base
		}
		return sum / epochs
	}
	small, large := inflation(5), inflation(100)
	if large <= small {
		t.Errorf("straggler inflation should grow with n: n=5 %g, n=100 %g", small, large)
	}
}

func TestControllerImmediateSwitch(t *testing.T) {
	r := NewRunner(7)
	w := workload.MobileNet()
	next := cost.Allocation{N: 20, MemMB: 2048, Storage: platform.ElastiCache}
	cfg := newMNJob(r, mnAlloc(), 0, 6)
	cfg.Controller = func(epoch int, loss float64, elapsed, spent float64) Decision {
		if epoch == 2 {
			return Decision{NewAlloc: &next}
		}
		return Decision{}
	}
	cfg.Workload = w
	res, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", res.Restarts)
	}
	if res.Trace[1].Alloc != mnAlloc() {
		t.Error("epoch 2 should still run on the old allocation")
	}
	if res.Trace[2].Alloc != next {
		t.Errorf("epoch 3 alloc = %v, want %v", res.Trace[2].Alloc, next)
	}
}

func TestDelayedRestartTakesOneMoreEpochOnOldAlloc(t *testing.T) {
	r := NewRunner(8)
	next := cost.Allocation{N: 20, MemMB: 2048, Storage: platform.S3}
	cfg := newMNJob(r, mnAlloc(), 0, 6)
	cfg.Controller = func(epoch int, loss float64, elapsed, spent float64) Decision {
		if epoch == 2 {
			return Decision{NewAlloc: &next, Delayed: true}
		}
		return Decision{}
	}
	res, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", res.Restarts)
	}
	// Epoch 3 still runs on the old allocation (overlap window), epoch 4 on
	// the new one.
	if res.Trace[2].Alloc != mnAlloc() {
		t.Errorf("epoch 3 alloc = %v, want old %v", res.Trace[2].Alloc, mnAlloc())
	}
	if res.Trace[3].Alloc != next {
		t.Errorf("epoch 4 alloc = %v, want new %v", res.Trace[3].Alloc, next)
	}
}

func TestDelayedRestartCheaperThanImmediate(t *testing.T) {
	// The whole point of Fig. 8: delayed restart hides startup+reload
	// behind the running epoch, so JCT overhead is lower.
	run := func(delayed bool) float64 {
		r := NewRunner(9)
		r.Noise = NoNoise()
		next := cost.Allocation{N: 20, MemMB: 2048, Storage: platform.S3}
		cfg := newMNJob(r, mnAlloc(), 0, 8)
		cfg.Controller = func(epoch int, loss float64, elapsed, spent float64) Decision {
			if epoch == 3 {
				return Decision{NewAlloc: &next, Delayed: delayed}
			}
			return Decision{}
		}
		res, err := r.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.OverheadTime
	}
	immediate, delayed := run(false), run(true)
	if delayed >= immediate {
		t.Errorf("delayed restart overhead %g should beat immediate %g", delayed, immediate)
	}
}

func TestPlanningSecondsCountedAsOverhead(t *testing.T) {
	r := NewRunner(10)
	cfg := newMNJob(r, mnAlloc(), 0, 3)
	cfg.Controller = func(epoch int, loss float64, elapsed, spent float64) Decision {
		return Decision{PlanningSeconds: 2.5}
	}
	res, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PlanningTime-7.5) > 1e-9 { // 3 epochs x 2.5s (after each)
		t.Errorf("PlanningTime = %g, want 7.5", res.PlanningTime)
	}
	if res.OverheadTime < 7.5 {
		t.Errorf("OverheadTime %g should include planning", res.OverheadTime)
	}
}

func TestControllerStop(t *testing.T) {
	r := NewRunner(11)
	cfg := newMNJob(r, mnAlloc(), 0, 100)
	cfg.Controller = func(epoch int, loss float64, elapsed, spent float64) Decision {
		if epoch >= 4 {
			return Decision{Stop: true}
		}
		return Decision{}
	}
	res, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 4 || res.Converged {
		t.Errorf("Epochs = %d converged=%v, want 4 and not converged", res.Epochs, res.Converged)
	}
}

func TestCheckpointRestoredOnRestart(t *testing.T) {
	// A real engine's weights must survive an immediate restart via the
	// storage checkpoint: loss continues from where it was, it does not
	// jump back to the initial loss.
	r := NewRunner(12)
	w := workload.LRHiggs()
	eng, err := w.NewRealEngine(workload.Hyperparams{LR: w.DefaultLR}, 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	next := cost.Allocation{N: 20, MemMB: 1024, Storage: platform.S3}
	var lossBefore float64
	cfg := Config{
		Workload: w, Engine: eng,
		Alloc:     cost.Allocation{N: 10, MemMB: 1024, Storage: platform.S3},
		MaxEpochs: 8,
		Controller: func(epoch int, loss float64, elapsed, spent float64) Decision {
			if epoch == 4 {
				lossBefore = loss
				return Decision{NewAlloc: &next}
			}
			return Decision{}
		},
	}
	res, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lossAfter := res.Trace[4].Loss
	if lossAfter > lossBefore*1.2 {
		t.Errorf("loss jumped from %g to %g after restart; checkpoint lost", lossBefore, lossAfter)
	}
	if r.Params().Stats().Puts == 0 {
		t.Error("no checkpoints were written through storage")
	}
}

func TestRunRejectsNilInputs(t *testing.T) {
	r := NewRunner(13)
	if _, err := r.Run(Config{}); err == nil {
		t.Error("nil workload/engine should error")
	}
}

func TestRunRejectsInfeasibleInvoke(t *testing.T) {
	r := NewRunner(14)
	w := workload.MobileNet()
	cfg := Config{
		Workload: w,
		Engine:   w.NewCurveEngine(workload.Hyperparams{}, 1),
		Alloc:    cost.Allocation{N: 10, MemMB: 64, Storage: platform.S3},
	}
	if _, err := r.Run(cfg); err == nil {
		t.Error("invalid memory should fail at invoke")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (float64, float64) {
		r := NewRunner(42)
		res, err := r.Run(newMNJob(r, mnAlloc(), 0.2, 300))
		if err != nil {
			t.Fatal(err)
		}
		return res.JCT, res.TotalCost
	}
	j1, c1 := run()
	j2, c2 := run()
	if j1 != j2 || c1 != c2 {
		t.Errorf("non-deterministic: (%g, %g) vs (%g, %g)", j1, c1, j2, c2)
	}
}

func TestVMPSJobFasterButPricierThanS3ForBigModel(t *testing.T) {
	w := workload.BERT()
	run := func(k platform.StorageKind) *Result {
		r := NewRunner(15)
		a := cost.Allocation{N: 10, MemMB: 4096, Storage: k}
		res, err := r.RunEpochs(w, w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 1), a, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	s3, vm := run(platform.S3), run(platform.VMPS)
	if vm.SyncTime >= s3.SyncTime {
		t.Errorf("VM-PS sync %g should beat S3 %g for a 340MB model", vm.SyncTime, s3.SyncTime)
	}
}
