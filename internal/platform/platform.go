// Package platform defines the substrate-agnostic contract between the
// CE-scaling decision stack (internal/core, internal/scheduler,
// internal/trainer) and the execution substrate it drives. The controller
// only ever needs three narrow capabilities:
//
//   - Compute: provision and invoke groups of n functions at memory m, with
//     cold/warm start semantics and per-invocation + per-GB-second billing;
//   - ParamStore: put/get model state plus the per-service latency/price
//     metering (object-size limits, (3n-2) vs (2n-2) sync patterns) the
//     allocation decisions consume;
//   - Clock: a notion of time, simulated or wall.
//
// Two backends implement the contract: platform/simbackend wraps the
// discrete-event simulation (internal/faas + internal/storage +
// internal/sim) and is the default for every experiment, and
// platform/livebackend wraps the live substrates (internal/lambda +
// internal/objstore + internal/psnet) so the same controller code executes
// Algorithm 2's δ-triggered re-allocation and delayed restart against real
// concurrent workers.
package platform

import (
	"repro/internal/obs"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/storage"
)

// StorageKind identifies one external storage service. It is an alias of the
// modeling package's Kind so allocation points flow between layers without
// conversion; decision-stack packages refer to kinds only through this name.
type StorageKind = storage.Kind

// Storage service kinds, re-exported for the decision stack.
const (
	S3          = storage.S3
	DynamoDB    = storage.DynamoDB
	ElastiCache = storage.ElastiCache
	VMPS        = storage.VMPS
	Pocket      = storage.Pocket
)

// StorageKinds lists the paper's four evaluated services in display order.
func StorageKinds() []StorageKind { return storage.Kinds() }

// ExtendedStorageKinds adds the optional Pocket service to the evaluated four.
func ExtendedStorageKinds() []StorageKind { return storage.ExtendedKinds() }

// Invocation describes one admitted function instance of a group.
type Invocation struct {
	MemMB      int
	StartDelay float64 // cold- or warm-start latency in seconds
	Cold       bool
}

// ComputeMeter is the accumulated function-platform bill.
type ComputeMeter struct {
	Invocations uint64
	GBSeconds   float64
	InvokeCost  float64
	ComputeCost float64
}

// Total returns the platform bill so far.
func (m ComputeMeter) Total() float64 { return m.InvokeCost + m.ComputeCost }

// Compute is the function-execution substrate: group invocation under a
// concurrency cap, cold/warm start behaviour, and compute billing.
type Compute interface {
	// InvokeGroup admits n concurrent functions of memMB memory and returns
	// one Invocation per function with its individual start latency. The
	// group counts against the concurrency cap until ReleaseGroup.
	InvokeGroup(n, memMB int) ([]Invocation, error)
	// ReleaseGroup ends n functions of memMB, billing secondsEach compute
	// time per function and returning their sandboxes to the warm pool.
	ReleaseGroup(n, memMB int, secondsEach float64)
	// BillCompute charges compute time for n admitted functions without
	// touching admission state (per-epoch billing while the group persists).
	BillCompute(n, memMB int, secondsEach float64)
	// ColdStartEstimate returns the deterministic (jitter-free) cold-start
	// latency for memMB, as the analytical models assume it.
	ColdStartEstimate(memMB int) float64
	// MaxConcurrency reports the account-level concurrent execution cap.
	MaxConcurrency() int
	// InFlight reports how many function instances are currently admitted.
	InFlight() int
	// Meter returns a snapshot of the platform bill so far.
	Meter() ComputeMeter
}

// StorageService is the latency/price metering of one external storage
// service: what the cost models and the trainer charge a synchronization,
// transfer or provisioned-runtime second against.
type StorageService interface {
	Kind() StorageKind
	// TransferTime returns the time to move one object of sizeMB between a
	// function and the service, for one of n concurrent clients.
	TransferTime(n int, sizeMB float64) float64
	// SyncTime returns the wall-clock time of one parameter synchronization
	// of a model of modelMB across n functions (the (3n-2)/(2n-2) patterns).
	SyncTime(n int, modelMB float64) float64
	// SyncRequestCost returns the $ cost of one synchronization's requests
	// for request-charged services; 0 for runtime-charged services.
	SyncRequestCost(n int, modelMB float64) float64
	// RuntimeCost returns the $ cost of keeping a runtime-charged service
	// provisioned for seconds; 0 for request-charged services.
	RuntimeCost(seconds float64) float64
	// ChargesByRequest reports whether the service bills per request rather
	// than per provisioned runtime.
	ChargesByRequest() bool
	// ProvisionDelay returns the startup delay before a manually-scaled
	// service is usable; zero for auto-scaling services.
	ProvisionDelay() float64
	// Supports reports whether a model of modelMB fits the service's object
	// size limit.
	Supports(modelMB float64) bool
}

// StoreStats counts model-state operations against the parameter store.
type StoreStats struct {
	Puts, Gets uint64
}

// ParamStore is the model-state substrate: real put/get of parameter
// vectors (checkpoints, handoff state) plus the per-service metering models.
type ParamStore interface {
	// Service returns the metering model for kind.
	Service(kind StorageKind) StorageService
	// Put stores a copy of vec under key, overwriting any previous value.
	Put(key string, vec []float64) error
	// Get returns the vector stored under key, or ok=false when absent.
	Get(key string) (vec []float64, ok bool, err error)
	// LoadCost returns the $ cost of the initial dataset load for n
	// functions (one GET per function against object storage).
	LoadCost(n int) float64
	// Stats reports cumulative operation counts.
	Stats() StoreStats
}

// Clock is the substrate's notion of time. The decision stack keeps each
// job's own timeline itself; Advance lets it mirror job progress onto the
// shared clock so time-based substrate events (warm-sandbox expiry) fire.
type Clock interface {
	// Now returns seconds since the substrate started.
	Now() float64
	// Advance moves the shared clock d seconds forward. The simulated clock
	// fires due events; a wall clock advances on its own and treats Advance
	// as a modeling directive for its shadow meters.
	Advance(d float64)
}

// Backend bundles the three capabilities plus the deterministic named
// random streams and the price book every substrate carries.
type Backend interface {
	Compute() Compute
	Params() ParamStore
	Clock() Clock
	// Rand returns the named deterministic random stream; streams with the
	// same name under the same seed produce the same sequence on every
	// backend, which is what makes sim/live decision parity possible.
	Rand(name string) *sim.Rand
	// Prices returns the price book the substrate bills under.
	Prices() pricing.PriceBook
	// Name identifies the backend ("sim", "live") for reporting.
	Name() string
}

// GroupRunner is optionally implemented by backends that execute real work
// per epoch: the trainer calls RunEpoch at every epoch boundary so live
// worker groups run one real synchronization barrier (model pull + gradient
// push over the wire). Simulated backends do not implement it.
type GroupRunner interface {
	// RunEpoch drives one epoch barrier across the group serving allocation
	// (n, memMB), using kind's wire pattern for the synchronization.
	RunEpoch(n, memMB int, kind StorageKind) error
}

// Observable is optionally implemented by backends that can record into an
// observability sink. Simulated backends stamp events with the DES clock
// (deterministic, byte-identical traces); the live backend stamps with
// seconds since it started.
type Observable interface {
	SetObserver(*obs.Observer)
}

// Attach points b's observability at o if the backend supports it; it is a
// no-op otherwise. A nil o detaches.
func Attach(b Backend, o *obs.Observer) {
	if ob, ok := b.(Observable); ok {
		ob.SetObserver(o)
	}
}

// ShardedKernel is optionally implemented by backends whose clock is a
// sharded discrete-event kernel (simbackend). shards is the number of
// independently advancing event queues, workers bounds how many execute
// concurrently inside one conservative window, and lookahead is the window
// width — the minimum virtual delay of any cross-shard interaction. The
// defaults (1, 1, +Inf) are the single-queue behavior; results are
// byte-identical at every setting for workloads that keep per-shard
// ownership (see internal/sim).
type ShardedKernel interface {
	ConfigureSharding(shards, workers int, lookahead float64)
}

// ConfigureSharding applies the kernel sharding parameters if the backend
// supports them; it is a no-op otherwise (the live backend has real
// concurrency instead of simulated shards).
func ConfigureSharding(b Backend, shards, workers int, lookahead float64) {
	if sk, ok := b.(ShardedKernel); ok {
		sk.ConfigureSharding(shards, workers, lookahead)
	}
}

// Closer is optionally implemented by backends holding real resources
// (sockets, servers, worker goroutines).
type Closer interface {
	Close() error
}

// Close tears down b if it holds real resources; it is a no-op otherwise.
func Close(b Backend) error {
	if c, ok := b.(Closer); ok {
		return c.Close()
	}
	return nil
}
