package core

import (
	"fmt"

	"repro/internal/sha"
	"repro/internal/trainer"
	"repro/internal/workload"
)

// WorkflowOptions parameterize an end-to-end ML workflow (the paper's
// Fig. 1): hyperparameter tuning followed by full training with the winning
// configuration, under one overall budget or deadline.
type WorkflowOptions struct {
	// Exactly one of Budget or QoS must be positive; it covers BOTH phases.
	Budget float64
	QoS    float64

	// TuneShare is the fraction of the constraint reserved for the tuning
	// phase (default 0.6 — tuning runs thousands of partial trainings and
	// dominates spending in practice).
	TuneShare float64

	// Trials, Eta, EpochsPerStage configure the Successive-Halving phase.
	Trials         int
	Eta            int
	EpochsPerStage int

	Seed uint64
}

func (o WorkflowOptions) validate() error {
	if (o.Budget > 0) == (o.QoS > 0) {
		return fmt.Errorf("core: workflow needs exactly one of Budget or QoS")
	}
	if o.TuneShare < 0 || o.TuneShare >= 1 {
		return fmt.Errorf("core: TuneShare %g outside [0, 1)", o.TuneShare)
	}
	return nil
}

// WorkflowOutcome reports both phases of an executed workflow.
type WorkflowOutcome struct {
	Tune  *TuneOutcome
	Train *TrainOutcome

	// BestHyperparams is the tuning winner handed to the training phase.
	BestHyperparams workload.Hyperparams

	// Totals across both phases.
	TotalJCT  float64
	TotalCost float64
	// WithinConstraint reports whether the overall budget/deadline held.
	WithinConstraint bool
}

// RunWorkflow executes the full serverless ML workflow of Fig. 1 on one
// substrate: plan and run hyperparameter tuning under the tuning share of
// the constraint, then train to the target loss with the winning
// hyperparameters under whatever constraint remains.
func (f *Framework) RunWorkflow(opt WorkflowOptions, runner *trainer.Runner) (*WorkflowOutcome, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.TuneShare == 0 {
		opt.TuneShare = 0.6
	}
	if opt.Trials == 0 {
		opt.Trials = 256
	}
	if opt.Eta == 0 {
		opt.Eta = 2
	}
	if opt.EpochsPerStage == 0 {
		opt.EpochsPerStage = 2
	}

	tuneOpt := Options{Seed: opt.Seed}
	if opt.Budget > 0 {
		tuneOpt.Budget = opt.Budget * opt.TuneShare
	} else {
		tuneOpt.QoS = opt.QoS * opt.TuneShare
	}
	tune, err := f.RunHPT(opt.Trials, opt.Eta, opt.EpochsPerStage, tuneOpt, runner)
	if err != nil {
		return nil, fmt.Errorf("core: workflow tuning phase: %w", err)
	}

	out := &WorkflowOutcome{
		Tune:            tune,
		BestHyperparams: tune.Run.BestTrial.HP,
		TotalJCT:        tune.Run.JCT,
		TotalCost:       tune.Run.TotalCost,
	}

	// The training phase gets what remains of the constraint after the
	// measured tuning spend (not the planned one).
	trainOpt := Options{Seed: opt.Seed + 1}
	if opt.Budget > 0 {
		remaining := opt.Budget - tune.Run.TotalCost
		if remaining <= 0 {
			return out, fmt.Errorf("core: tuning consumed the whole budget ($%.2f of $%.2f)",
				tune.Run.TotalCost, opt.Budget)
		}
		trainOpt.Budget = remaining
	} else {
		remaining := opt.QoS - tune.Run.JCT
		if remaining <= 0 {
			return out, fmt.Errorf("core: tuning consumed the whole deadline (%.0fs of %.0fs)",
				tune.Run.JCT, opt.QoS)
		}
		trainOpt.QoS = remaining
	}

	train, err := f.TrainWithHyperparams(out.BestHyperparams, trainOpt, runner)
	if err != nil {
		return nil, fmt.Errorf("core: workflow training phase: %w", err)
	}
	out.Train = train
	out.TotalJCT += train.Result.JCT
	out.TotalCost += train.Result.TotalCost
	if opt.Budget > 0 {
		out.WithinConstraint = out.TotalCost <= opt.Budget*1.001
	} else {
		out.WithinConstraint = out.TotalJCT <= opt.QoS*1.001
	}
	return out, nil
}

// TrainWithHyperparams is Train with explicit trial hyperparameters instead
// of the workload defaults (used by the workflow's training phase, which
// trains the tuning winner).
func (f *Framework) TrainWithHyperparams(hp workload.Hyperparams, opt Options, runner *trainer.Runner) (*TrainOutcome, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	sched, alloc, est, err := f.newSchedulerSession(opt)
	if err != nil {
		return nil, err
	}
	engine := f.Workload.NewEngine(hp, opt.Seed)
	res, err := runner.Run(trainer.Config{
		Workload:   f.Workload,
		Engine:     engine,
		Alloc:      alloc,
		TargetLoss: f.Workload.TargetLoss,
		MaxEpochs:  2000,
		Controller: sched.Controller(),
	})
	if err != nil {
		return nil, err
	}
	return &TrainOutcome{Result: res, Scheduler: sched, OfflineEstimate: est}, nil
}

// RunSHAWithCap executes a tuning plan with a per-stage concurrency cap
// (used by the Fixed baseline's equal-share semantics).
func (f *Framework) RunSHAWithCap(trials, eta, epochsPerStage int, plan sha.Config, runner *trainer.Runner) (*sha.Result, error) {
	plan.Workload = f.Workload
	plan.Trials = trials
	plan.Eta = eta
	plan.EpochsPerStage = epochsPerStage
	plan.Runner = runner
	return sha.Run(plan)
}
