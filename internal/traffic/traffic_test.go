package traffic

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func drain(c Cursor) []float64 {
	var ts []float64
	for {
		t, ok := c.Next()
		if !ok {
			return ts
		}
		ts = append(ts, t)
	}
}

func checkMonotone(t *testing.T, ts []float64, horizon float64) {
	t.Helper()
	prev := -1.0
	for i, x := range ts {
		if x <= prev {
			t.Fatalf("arrival %d at %g not after previous %g", i, x, prev)
		}
		if x >= horizon {
			t.Fatalf("arrival %d at %g >= horizon %g", i, x, horizon)
		}
		prev = x
	}
}

func allKinds(horizon float64) []Config {
	tr := MakeTrace([][]uint32{{3, 0, 7, 1, 0, 4}})
	return []Config{
		{Kind: Poisson, Rate: 2, Horizon: horizon},
		{Kind: Bursty, Rate: 2, Horizon: horizon},
		{Kind: Diurnal, Rate: 2, Horizon: horizon, Period: 120},
		{Kind: TraceReplay, Trace: tr, Horizon: horizon},
	}
}

// TestCursorsMonotoneAndBounded: every kind yields strictly increasing
// times below the horizon and stays exhausted after the first false.
func TestCursorsMonotoneAndBounded(t *testing.T) {
	const horizon = 240
	for _, cfg := range allKinds(horizon) {
		c := cfg.Cursor(sim.NewRand(11))
		ts := drain(c)
		if len(ts) == 0 {
			t.Fatalf("%v: no arrivals", cfg.Kind)
		}
		checkMonotone(t, ts, horizon)
		for i := 0; i < 3; i++ {
			if _, ok := c.Next(); ok {
				t.Fatalf("%v: cursor yielded arrivals after exhaustion", cfg.Kind)
			}
		}
	}
}

// TestCursorsDeterministic: same seed, same sequence; different seed,
// different sequence.
func TestCursorsDeterministic(t *testing.T) {
	for _, cfg := range allKinds(240) {
		a := drain(cfg.Cursor(sim.NewRand(7)))
		b := drain(cfg.Cursor(sim.NewRand(7)))
		if len(a) != len(b) {
			t.Fatalf("%v: same seed, different lengths %d vs %d", cfg.Kind, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: same seed, arrival %d differs: %g vs %g", cfg.Kind, i, a[i], b[i])
			}
		}
		c := drain(cfg.Cursor(sim.NewRand(8)))
		if len(a) == len(c) {
			same := true
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
			if same {
				t.Errorf("%v: different seeds produced identical sequences", cfg.Kind)
			}
		}
	}
}

// TestPoissonMeanRate: over a long horizon the empirical rate and mean
// interarrival converge to the configured rate (fixed seed, loose
// tolerance — this is a sanity bound, not a statistical test).
func TestPoissonMeanRate(t *testing.T) {
	const rate, horizon = 3.0, 20000.0
	ts := drain(NewPoisson(sim.NewRand(1), rate, horizon))
	got := float64(len(ts)) / horizon
	if math.Abs(got-rate)/rate > 0.05 {
		t.Errorf("empirical rate %.3f, want %.1f +-5%%", got, rate)
	}
}

// TestBurstyRateBetweenStates: the MMPP's overall rate lands strictly
// between the calm and burst rates, and bursts make it exceed a plain
// Poisson at the calm rate.
func TestBurstyRateBetweenStates(t *testing.T) {
	const calm, factor, horizon = 1.0, 8.0, 50000.0
	ts := drain(NewBursty(sim.NewRand(2), calm, calm*factor, 540, 60, horizon))
	got := float64(len(ts)) / horizon
	// Dwell means 540/60 put the time-average rate at
	// (540·1 + 60·8)/600 = 1.7.
	want := (540*calm + 60*calm*factor) / 600
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("empirical MMPP rate %.3f, want about %.2f", got, want)
	}
	if got <= calm || got >= calm*factor {
		t.Errorf("MMPP rate %.3f outside (%.1f, %.1f)", got, calm, calm*factor)
	}
}

// TestDiurnalPeakVsTrough: with a full-cycle horizon, the half-period
// around the sine peak carries visibly more arrivals than the trough
// half.
func TestDiurnalPeakVsTrough(t *testing.T) {
	const base, amp, period = 2.0, 0.8, 1000.0
	ts := drain(NewDiurnal(sim.NewRand(3), base, amp, period, 0, period))
	var peak, trough int
	for _, x := range ts {
		if x < period/2 {
			peak++ // sin positive on the first half-period
		} else {
			trough++
		}
	}
	if peak < trough*2 {
		t.Errorf("peak half %d arrivals vs trough half %d: diurnal shape missing", peak, trough)
	}
}

// TestTraceCursorCounts: replay emits exactly the per-minute counts, each
// arrival inside its own minute, skipping zero minutes.
func TestTraceCursorCounts(t *testing.T) {
	row := []uint32{2, 0, 5, 1, 0, 0, 3}
	tr := MakeTrace([][]uint32{row})
	ts := drain(NewTraceCursor(sim.NewRand(4), tr, 0, math.Inf(1)))
	if want := int(tr.RowTotal(0)); len(ts) != want {
		t.Fatalf("replayed %d arrivals, want %d", len(ts), want)
	}
	perMinute := make([]uint32, len(row))
	for _, x := range ts {
		m := int(x / 60)
		if m < 0 || m >= len(row) {
			t.Fatalf("arrival at %g outside the trace", x)
		}
		perMinute[m]++
	}
	for m, want := range row {
		if perMinute[m] != want {
			t.Errorf("minute %d: %d arrivals, want %d", m, perMinute[m], want)
		}
	}
	checkMonotone(t, ts, math.Inf(1))
}

// TestTraceCursorHorizonTruncates: a horizon inside the trace cuts the
// replay there.
func TestTraceCursorHorizonTruncates(t *testing.T) {
	tr := MakeTrace([][]uint32{{4, 4, 4}})
	ts := drain(NewTraceCursor(sim.NewRand(4), tr, 0, 60))
	if len(ts) != 4 {
		t.Fatalf("horizon 60 replayed %d arrivals, want the first minute's 4", len(ts))
	}
	checkMonotone(t, ts, 60)
}

// TestCursorNextZeroAlloc: the per-arrival step is allocation-free for
// every kind — the scenarios call it tens of millions of times.
//
// hotpath-gate: traffic.Cursor.Next
func TestCursorNextZeroAlloc(t *testing.T) {
	for _, cfg := range allKinds(math.MaxFloat64 / 2) {
		cfg := cfg
		if cfg.Kind == TraceReplay {
			// A long synthetic row so the cursor cannot exhaust mid-run.
			row := make([]uint32, 100000)
			for i := range row {
				row[i] = 5
			}
			cfg.Trace = MakeTrace([][]uint32{row})
		}
		c := cfg.Cursor(sim.NewRand(9))
		if n := testing.AllocsPerRun(2000, func() {
			if _, ok := c.Next(); !ok {
				t.Fatalf("%v: cursor exhausted during alloc run", cfg.Kind)
			}
		}); n != 0 {
			t.Errorf("%v: Next allocates %.1f times per call, want 0", cfg.Kind, n)
		}
	}
}

// TestConfigValidate: the front-end validation rejects the obvious
// misconfigurations.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Kind: Poisson, Rate: 0, Horizon: 10},
		{Kind: Poisson, Rate: 1, Horizon: 0},
		{Kind: Poisson, Rate: math.Inf(1), Horizon: 10},
		{Kind: Diurnal, Rate: 1, Horizon: 10, Amplitude: 1.5},
		{Kind: TraceReplay, Row: 0}, // empty trace
		{Kind: Kind(200), Rate: 1, Horizon: 10},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid config", cfg)
		}
	}
	ok := Config{Kind: Bursty, Rate: 1, Horizon: 10}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate(%+v) = %v, want nil (defaults must apply)", ok, err)
	}
}

// TestParseKindRoundTrip covers the flag mapping.
func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Poisson, Bursty, Diurnal, TraceReplay} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("sawtooth"); err == nil {
		t.Error("ParseKind accepted an unknown kind")
	}
}
