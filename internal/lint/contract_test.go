package lint

// Contract-seam test: the module enforces its zero-allocation promises twice
// — at runtime with testing.AllocsPerRun gates and statically with
// //cescalint:hotpath annotations — and the two layers must not drift apart.
// Every AllocsPerRun call site must sit in a test that declares which
// hotpath function it guards with a `// hotpath-gate: <pkg>.<Func>` comment,
// and every declared gate must resolve to a live hotpath annotation. The
// reverse direction is a report, not an assertion: transitive verification
// means most annotated functions are covered through their gated callers.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// hotpathGatePrefix marks a test comment naming the hotpath function a
// testing.AllocsPerRun gate in the same test function guards.
const hotpathGatePrefix = "hotpath-gate:"

// contractSite is one testing.AllocsPerRun call found in a _test.go file.
type contractSite struct {
	pos   token.Position
	test  string   // enclosing test function
	gates []string // hotpath-gate names declared in that function
}

func TestAllocGatesMatchHotpathAnnotations(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := FindModule(wd)
	if err != nil {
		t.Fatal(err)
	}

	fset := token.NewFileSet()
	var sites []contractSite
	annotated := map[string]token.Position{}

	walkErr := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", ".git", "vendor":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		if strings.HasSuffix(path, "_test.go") {
			sites = append(sites, allocGateSites(fset, file)...)
		} else {
			collectHotpathNames(fset, file, annotated)
		}
		return nil
	})
	if walkErr != nil {
		t.Fatal(walkErr)
	}

	if len(sites) == 0 {
		t.Fatal("no testing.AllocsPerRun call sites found in the module; the runtime allocation gates have disappeared")
	}

	gated := map[string]token.Position{}
	for _, s := range sites {
		if len(s.gates) == 0 {
			t.Errorf("%s: testing.AllocsPerRun in %s has no %q comment naming the hotpath function it guards",
				s.pos, s.test, hotpathGatePrefix)
			continue
		}
		for _, g := range s.gates {
			if _, ok := annotated[g]; !ok {
				t.Errorf("%s: %s declares %s %s, but no //cescalint:hotpath annotation with that name exists",
					s.pos, s.test, hotpathGatePrefix, g)
			}
			gated[g] = s.pos
		}
	}

	// Vice-versa report: annotated roots with no direct runtime gate. Not a
	// failure — the static check covers callees transitively — but the list
	// shows where a new AllocsPerRun gate would ground the contract.
	for name, pos := range annotated {
		if _, ok := gated[name]; !ok {
			t.Logf("hotpath-annotated but not AllocsPerRun-gated: %s (%s)", name, pos)
		}
	}
}

// allocGateSites returns every testing.AllocsPerRun call in file, each
// paired with the hotpath-gate names declared inside its enclosing test.
func allocGateSites(fset *token.FileSet, file *ast.File) []contractSite {
	var sites []contractSite
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		var calls []token.Pos
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "AllocsPerRun" {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "testing" {
					calls = append(calls, call.Pos())
				}
			}
			return true
		})
		if len(calls) == 0 {
			continue
		}
		var gates []string
		groups := []*ast.CommentGroup{fn.Doc}
		for _, cg := range file.Comments {
			if cg.End() >= fn.Pos() && cg.Pos() <= fn.End() {
				groups = append(groups, cg)
			}
		}
		for _, cg := range groups {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if rest, ok := strings.CutPrefix(text, hotpathGatePrefix); ok {
					if name := strings.TrimSpace(rest); name != "" {
						gates = append(gates, name)
					}
				}
			}
		}
		for _, pos := range calls {
			sites = append(sites, contractSite{pos: fset.Position(pos), test: fn.Name.Name, gates: gates})
		}
	}
	return sites
}

// collectHotpathNames records every //cescalint:hotpath annotation in file as
// "<pkg>.<Func>", "<pkg>.<Type>.<Method>" (value and pointer receivers
// collapse to the bare type name) or "<pkg>.<Iface>.<Method>".
func collectHotpathNames(fset *token.FileSet, file *ast.File, out map[string]token.Position) {
	pkg := file.Name.Name
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !hasHotpathDirective(d.Doc) {
				continue
			}
			name := pkg + "." + d.Name.Name
			if d.Recv != nil && len(d.Recv.List) == 1 {
				if recv := receiverTypeName(d.Recv.List[0].Type); recv != "" {
					name = pkg + "." + recv + "." + d.Name.Name
				}
			}
			out[name] = fset.Position(d.Pos())
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				iface, ok := ts.Type.(*ast.InterfaceType)
				if !ok || iface.Methods == nil {
					continue
				}
				for _, m := range iface.Methods.List {
					if len(m.Names) != 1 || !hasHotpathDirective(m.Doc) {
						continue
					}
					out[pkg+"."+ts.Name.Name+"."+m.Names[0].Name] = fset.Position(m.Pos())
				}
			}
		}
	}
}

// hasHotpathDirective reports whether the comment group carries a
// //cescalint:hotpath directive (with or without a trailing `-- note`).
func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == "//cescalint:hotpath" || strings.HasPrefix(c.Text, "//cescalint:hotpath ") {
			return true
		}
	}
	return false
}

// receiverTypeName unwraps a method receiver AST expression to its bare
// type identifier ("*Fitter" and "Fitter" both yield "Fitter").
func receiverTypeName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}
