package experiments

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/predictor"
	"repro/internal/storage"
	"repro/internal/trainer"
	"repro/internal/workload"
)

func init() {
	register("fig4", fig4)
	register("fig7", fig7)
	register("fig19", fig19)
	register("fig20", fig20)
	register("fig19x", fig19x)
}

// fig4 — offline vs online epoch-prediction error.
func fig4(seed uint64) (*Table, error) {
	w := workload.MobileNet()
	const runs = 12
	t := &Table{
		ID:      "fig4",
		Title:   "Epoch-prediction error: offline sampling (LambdaML-style) vs online curve fitting",
		Headers: []string{"predictor", "observed fraction", "mean abs error", "max abs error"},
		Notes:   fmt.Sprintf("MobileNet-Cifar10, %d independent runs; error = |predicted - actual| / actual epochs to target", runs),
	}

	type truthRun struct {
		truth int
		trace []float64
	}
	truthRuns, err := cells(runs, func(i int) (truthRun, error) {
		eng := w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, seed+uint64(i)*31)
		var trace []float64
		for e := 1; e <= 5000; e++ {
			l := eng.NextEpoch()
			trace = append(trace, l)
			if l <= w.TargetLoss {
				return truthRun{truth: e, trace: trace}, nil
			}
		}
		return truthRun{}, fmt.Errorf("fig4: run %d never converged", i)
	})
	if err != nil {
		return nil, err
	}
	truths := make([]int, runs)
	engines := make([][]float64, runs) // per-run loss traces
	for i, r := range truthRuns {
		truths[i] = r.truth
		engines[i] = r.trace
	}

	// Offline: one prediction per run, before it starts.
	var offSum, offMax float64
	off := predictor.NewOffline(w)
	for i := 0; i < runs; i++ {
		pred := off.PredictEpochs(w.TargetLoss, seed+uint64(i)*31)
		e := math.Abs(float64(pred-truths[i])) / float64(truths[i])
		offSum += e
		if e > offMax {
			offMax = e
		}
	}
	t.Rows = append(t.Rows, []string{"offline (sampling)", "0% (before start)", pct(offSum / runs), pct(offMax)})

	// Online: error after observing 25/50/75% of the true horizon.
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		var sum, max float64
		for i := 0; i < runs; i++ {
			on := predictor.NewOnline()
			upto := int(float64(truths[i]) * frac)
			if upto < on.MinPoints {
				upto = on.MinPoints
			}
			for e := 1; e <= upto && e <= len(engines[i]); e++ {
				on.Observe(e, engines[i][e-1])
			}
			var e float64 = 1
			if pred, ok := on.PredictTotalEpochs(w.TargetLoss); ok {
				e = math.Abs(float64(pred-truths[i])) / float64(truths[i])
			}
			sum += e
			if e > max {
				max = e
			}
		}
		t.Rows = append(t.Rows, []string{"online (curve fit)", pct(frac), pct(sum / runs), pct(max)})
	}
	return t, nil
}

// fig7 — the cost/JCT scatter of sampled allocations with the Pareto
// boundary, LR on Higgs.
func fig7(seed uint64) (*Table, error) {
	w := workload.LRHiggs()
	m := cost.NewModel(w)
	all := m.Enumerate(cost.DefaultGrid())
	front := cost.Pareto(all)
	onFront := make(map[cost.Allocation]bool, len(front))
	for _, p := range front {
		onFront[p.Alloc] = true
	}

	// Sample 50 allocations deterministically: the boundary itself (up to
	// 20 points) plus a stride over the interior.
	t := &Table{
		ID:      "fig7",
		Title:   "50 sampled allocations in the (epoch time, epoch cost) plane, LR-Higgs",
		Headers: []string{"allocation", "epoch time", "epoch cost", "pareto"},
		Notes:   fmt.Sprintf("full space: %d feasible allocations, Pareto boundary: %d", len(all), len(front)),
	}
	emit := func(p cost.Point) {
		mark := ""
		if onFront[p.Alloc] {
			mark = "*"
		}
		t.Rows = append(t.Rows, []string{p.Alloc.String(), seconds(p.Time), dollars(p.Cost), mark})
	}
	nFront := len(front)
	if nFront > 20 {
		nFront = 20
	}
	for _, p := range front[:nFront] {
		emit(p)
	}
	interior := make([]cost.Point, 0, len(all))
	for _, p := range all {
		if !onFront[p.Alloc] {
			interior = append(interior, p)
		}
	}
	need := 50 - nFront
	stride := len(interior) / need
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(interior) && need > 0; i += stride {
		emit(interior[i])
		need--
	}
	_ = seed
	return t, nil
}

// validation compares the analytic estimates with simulated ground truth
// for a sweep of allocations.
func validation(id, title string, w *workload.Model, allocs []cost.Allocation, seed uint64) (*Table, error) {
	m := cost.NewModel(w)
	const epochs = 5
	t := &Table{
		ID:      id,
		Title:   title,
		Headers: []string{"allocation", "est JCT", "sim JCT", "JCT err", "est cost", "sim cost", "cost err"},
		Notes:   fmt.Sprintf("%d epochs per run; simulated ground truth includes stragglers, sync noise and cold starts", epochs),
	}
	rows, err := cells(len(allocs), func(i int) ([]string, error) {
		a := allocs[i]
		if !m.Feasible(a) {
			return []string{a.String(), "infeasible", "", "", "", "", ""}, nil
		}
		r := trainer.NewRunner(seed + uint64(a.N) + uint64(a.MemMB))
		res, err := r.RunEpochs(w, w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, seed), a, epochs)
		if err != nil {
			return nil, err
		}
		estT := m.JobTime(a, epochs)
		estC := m.JobCost(a, epochs)
		return []string{
			a.String(),
			seconds(estT), seconds(res.JCT), pct(math.Abs(estT-res.JCT) / res.JCT),
			dollars(estC), dollars(res.TotalCost), pct(math.Abs(estC-res.TotalCost) / res.TotalCost),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}

// fig19 — model validation sweeping the function count.
func fig19(seed uint64) (*Table, error) {
	var allocs []cost.Allocation
	for _, n := range []int{10, 20, 30, 40, 50} {
		allocs = append(allocs, cost.Allocation{N: n, MemMB: 1769, Storage: storage.S3})
	}
	return validation("fig19", "Analytical model vs simulated actuals, LR-Higgs, memory fixed at 1769MB", workload.LRHiggs(), allocs, seed)
}

// fig19x — extension: model validation across every storage service (the
// paper validates on S3 only; Eq. 3/5 also cover the other three).
func fig19x(seed uint64) (*Table, error) {
	var allocs []cost.Allocation
	for _, k := range storage.Kinds() {
		allocs = append(allocs,
			cost.Allocation{N: 10, MemMB: 1769, Storage: k},
			cost.Allocation{N: 50, MemMB: 1769, Storage: k},
		)
	}
	return validation("fig19x",
		"Analytical model vs simulated actuals across storage services, MobileNet",
		workload.MobileNet(), allocs, seed)
}

// fig20 — model validation sweeping the memory size.
func fig20(seed uint64) (*Table, error) {
	var allocs []cost.Allocation
	for _, mem := range []int{1024, 1769, 3072, 4096, 6144} {
		allocs = append(allocs, cost.Allocation{N: 10, MemMB: mem, Storage: storage.S3})
	}
	return validation("fig20", "Analytical model vs simulated actuals, LR-Higgs, 10 functions", workload.LRHiggs(), allocs, seed)
}
