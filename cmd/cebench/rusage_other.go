//go:build !linux && !windows

package main

import (
	"runtime"
	"syscall"
)

// peakRSSKB reports the process high-water-mark resident set in kB via
// getrusage. ru_maxrss is bytes on Darwin and kB on the BSDs.
func peakRSSKB() (int64, error) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, err
	}
	maxrss := int64(ru.Maxrss)
	if runtime.GOOS == "darwin" {
		maxrss /= 1024
	}
	return maxrss, nil
}
