package planner

import "repro/internal/fault"

// JCTUnderFaults predicts a plan's JCT under a deterministic fault schedule
// — the planning-side counterpart of the trainer's fault reaction, used to
// sanity-check a plan against known disruption windows (provider
// maintenance, scheduled capacity reclaims) before committing to it.
//
// The estimate walks the stages on the plan's own timeline and applies the
// schedule the same way the executor would: a stage starting inside a
// straggler window runs its whole wall time at the window's factor, every
// sandbox-kill event falling inside the stage adds one recovery penalty
// (the caller supplies the per-kill recovery estimate — typically cold
// start + checkpoint re-pull), and a stage starting inside an error-raising
// brownout window budgets the retry policy's full backoff once. Like the
// analytic JCT it refines, this is a prediction, not ground truth: windows
// are sampled at stage granularity.
func (pl *Planner) JCTUnderFaults(p Plan, sch *fault.Schedule, recovery float64, retry fault.RetryPolicy) float64 {
	if !sch.Active() {
		return pl.JCT(p)
	}
	var t float64
	for i, a := range p.Stages {
		cold := i == 0 || a.MemMB != p.Stages[i-1].MemMB
		stage := pl.stageTimeWavesCold(i, a, pl.waves(i, a), cold)
		start := t
		stage *= sch.StragglerFactor(start)
		stage += float64(sch.KillsIn(start, start+stage)) * recovery
		if _, errRate, on := sch.BrownoutAt(start); on && errRate > 0 {
			stage += retry.OrDefault().TotalBackoff()
		}
		t += stage
	}
	return t
}
