package sim

// The sanctioned parallel executor. This is the only file in internal/sim
// allowed to start goroutines or import sync (enforced by the cescalint
// `shardsafe` analyzer via cescalint.policy): every other part of the
// kernel is single-threaded by construction, which is what makes the
// byte-identical determinism argument auditable.
//
// Inside one conservative lookahead window the shards are independent —
// cross-shard posts sit in per-shard outboxes until the barrier — so
// draining them concurrently runs the exact same per-shard work on
// disjoint state as the sequential path. The only shared reads during a
// window are immutable configuration (seed, lookahead) and the
// already-populated random-stream map; Simulation.Rand panics rather than
// mutate the map while parallelActive is set.

import (
	"sync"
	"sync/atomic"
)

// drainWindowParallel executes one lookahead window with up to
// Simulation.workers goroutines pulling shards off a shared index. Shard
// assignment order does not matter: any interleaving produces the same
// per-shard results, and post delivery at the barrier (flushPosts) is
// sequential in shard order.
func (s *Simulation) drainWindowParallel(bound Time, inclusive bool) {
	w := s.workers
	if n := len(s.shards); w > n {
		w = n
	}
	s.parallelActive = true
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(s.shards) {
					return
				}
				s.shards[k].drain(bound, inclusive)
			}
		}()
	}
	wg.Wait()
	s.parallelActive = false
}
