package core

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/platform"
	"repro/internal/trainer"
	"repro/internal/workload"
)

func TestNewProfilesWorkload(t *testing.T) {
	f := New(workload.MobileNet())
	if len(f.Full) == 0 || len(f.Pareto) == 0 {
		t.Fatal("profiling produced no allocations")
	}
	if len(f.Pareto) >= len(f.Full) {
		t.Error("Pareto front should prune the enumeration")
	}
}

func TestOptionsValidation(t *testing.T) {
	f := New(workload.MobileNet())
	if _, _, err := f.PlanHPT(16, 2, 2, Options{}); err == nil {
		t.Error("no constraint should be rejected")
	}
	if _, _, err := f.PlanHPT(16, 2, 2, Options{Budget: 1, QoS: 1}); err == nil {
		t.Error("two constraints should be rejected")
	}
	if _, err := f.Train(Options{}, trainer.NewRunner(1)); err == nil {
		t.Error("Train without constraint should be rejected")
	}
}

func TestPlanHPTGivenBudget(t *testing.T) {
	f := New(workload.MobileNet())
	res, pl, err := f.PlanHPT(256, 2, 2, Options{Budget: 1e9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pl == nil || len(res.Plan.Stages) == 0 {
		t.Fatal("no plan produced")
	}
	if !res.Feasible {
		t.Error("huge budget must be feasible")
	}
}

func TestRunHPTExecutesPlan(t *testing.T) {
	f := New(workload.MobileNet())
	out, err := f.RunHPT(16, 2, 2, Options{Budget: 1e9, Seed: 3}, trainer.NewRunner(3))
	if err != nil {
		t.Fatal(err)
	}
	if out.Run.BestTrial == nil {
		t.Fatal("tuning produced no winner")
	}
	if out.Run.JCT <= 0 || out.Run.TotalCost <= 0 {
		t.Error("non-positive run metrics")
	}
}

func TestTrainConverges(t *testing.T) {
	f := New(workload.MobileNet())
	out, err := f.Train(Options{Budget: 100, Seed: 5}, trainer.NewRunner(5))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Result.Converged {
		t.Fatalf("training did not converge (loss %g)", out.Result.FinalLoss)
	}
	if out.OfflineEstimate < 1 {
		t.Error("missing offline estimate")
	}
}

func TestPinStorageRestrictsCandidates(t *testing.T) {
	f := New(workload.MobileNet())
	for _, kind := range []platform.StorageKind{platform.S3, platform.VMPS, platform.ElastiCache} {
		k := kind
		out, err := f.Train(Options{Budget: 100, Seed: 7, PinStorage: &k}, trainer.NewRunner(7))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for _, e := range out.Result.Trace {
			if e.Alloc.Storage != kind {
				t.Fatalf("trace used %v while pinned to %v", e.Alloc.Storage, kind)
			}
		}
	}
}

func TestPinDynamoInfeasibleForBigModels(t *testing.T) {
	f := New(workload.MobileNet())
	k := platform.DynamoDB
	if _, err := f.Train(Options{Budget: 100, Seed: 7, PinStorage: &k}, trainer.NewRunner(7)); err == nil {
		t.Error("MobileNet pinned to DynamoDB must fail (400KB item limit)")
	}
}

func TestDisableParetoUsesFullSet(t *testing.T) {
	f := New(workload.MobileNet())
	withP := f.candidates(Options{Budget: 1})
	without := f.candidates(Options{Budget: 1, DisablePareto: true})
	if len(without) <= len(withP) {
		t.Errorf("full set %d should exceed pareto %d", len(without), len(withP))
	}
}

func TestQoSDrivenTraining(t *testing.T) {
	f := New(workload.MobileNet())
	probe, err := f.Train(Options{Budget: 1e9, Seed: 9}, trainer.NewRunner(9))
	if err != nil {
		t.Fatal(err)
	}
	qos := probe.Result.JCT * 2
	out, err := f.Train(Options{QoS: qos, Seed: 9}, trainer.NewRunner(10))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Result.Converged {
		t.Fatal("QoS-driven training did not converge")
	}
	if out.Result.JCT > qos*1.2 {
		t.Errorf("JCT %g blew QoS %g", out.Result.JCT, qos)
	}
}

func TestPinnedCandidatesAreParetoOfSubset(t *testing.T) {
	f := New(workload.MobileNet())
	k := platform.S3
	pinned := f.candidates(Options{Budget: 1, PinStorage: &k})
	if len(pinned) == 0 {
		t.Fatal("no pinned candidates")
	}
	for _, p := range pinned {
		if p.Alloc.Storage != platform.S3 {
			t.Fatalf("pinned set leaked %v", p.Alloc.Storage)
		}
	}
	// The pinned set must be its own Pareto front (mutually nondominated),
	// not the intersection with the global front.
	for _, a := range pinned {
		for _, b := range pinned {
			if a.Alloc != b.Alloc && cost.Dominates(a, b) {
				t.Fatalf("pinned set member %v dominated by %v", b.Alloc, a.Alloc)
			}
		}
	}
	// And richer than the global front's S3 slice would be.
	global := 0
	for _, p := range f.Pareto {
		if p.Alloc.Storage == platform.S3 {
			global++
		}
	}
	if len(pinned) < global {
		t.Errorf("pinned frontier (%d) smaller than the global front's S3 slice (%d)", len(pinned), global)
	}
}

func TestPinnedDisableParetoGivesFullSubset(t *testing.T) {
	f := New(workload.MobileNet())
	k := platform.VMPS
	full := f.candidates(Options{Budget: 1, PinStorage: &k, DisablePareto: true})
	front := f.candidates(Options{Budget: 1, PinStorage: &k})
	if len(full) <= len(front) {
		t.Errorf("full pinned set %d should exceed its frontier %d", len(full), len(front))
	}
}
