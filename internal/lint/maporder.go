package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder forbids map iteration whose body leaks Go's randomized map
// order into observable output.
//
// Three body shapes are order-dependent: writing to a stream (fmt.Print*,
// fmt.Fprint*, or any Write/WriteString-style method) emits rows in map
// order; appending to a slice declared outside the loop freezes map order
// into the slice; both put random order on stdout or into returned data.
// The canonical fix is the sorted-keys idiom — collect keys, sort, range
// over the sorted slice — and the analyzer recognizes it: an append whose
// slice is passed to sort.*/slices.* later in the same block is exempt.
var MapOrder = &Analyzer{
	Name:  "maporder",
	Doc:   "forbid map iteration that writes output or builds slices in map order",
	Scope: ScopeAll,
	Run:   runMapOrder,
}

// writeMethods are io.Writer-shaped method names that emit bytes in call
// order.
var writeMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

func runMapOrder(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			list := stmtList(n)
			for i, stmt := range list {
				rs := asRange(stmt)
				if rs == nil || !isMapType(p.Info, rs.X) {
					continue
				}
				checkMapBody(p, rs, list[i+1:])
			}
			return true
		})
	}
}

// stmtList returns n's statement list if n owns one.
func stmtList(n ast.Node) []ast.Stmt {
	switch v := n.(type) {
	case *ast.BlockStmt:
		return v.List
	case *ast.CaseClause:
		return v.Body
	case *ast.CommClause:
		return v.Body
	}
	return nil
}

func asRange(s ast.Stmt) *ast.RangeStmt {
	for {
		switch v := s.(type) {
		case *ast.RangeStmt:
			return v
		case *ast.LabeledStmt:
			s = v.Stmt
		default:
			return nil
		}
	}
}

// checkMapBody flags order-dependent statements inside one map-range body.
// following is the tail of the enclosing block after the range statement,
// used to recognize the sorted-keys idiom.
func checkMapBody(p *Pass, rs *ast.RangeStmt, following []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if pkg, name, ok := pkgSel(p.Info, v.Fun); ok && pkg == "fmt" &&
				(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Append")) {
				p.Reportf(v.Pos(), "fmt.%s inside iteration over a map: rows come out in randomized map order; iterate sorted keys instead", name)
				return true
			}
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && writeMethods[sel.Sel.Name] {
				if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
					p.Reportf(v.Pos(), "%s call inside iteration over a map: bytes are emitted in randomized map order; iterate sorted keys instead", sel.Sel.Name)
				}
			}
		case *ast.AssignStmt:
			checkMapAppend(p, rs, v, following)
		}
		return true
	})
}

// checkMapAppend flags `outer = append(outer, ...)` inside a map range when
// outer is declared outside the loop and never handed to sort.*/slices.*
// afterwards in the same block.
func checkMapAppend(p *Pass, rs *ast.RangeStmt, as *ast.AssignStmt, following []ast.Stmt) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(p.Info, call) || i >= len(as.Lhs) {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := objectOf(p.Info, id)
		if obj == nil || declaredWithin(obj, rs) {
			continue
		}
		if sortedLater(p, obj, following) {
			continue
		}
		p.Reportf(as.Pos(), "append to %s (declared outside the loop) inside iteration over a map freezes randomized map order into the slice; collect keys, sort, then iterate", id.Name)
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedLater reports whether obj is used inside a call to the sort or
// slices package in any of the following statements — the tail half of the
// sorted-keys idiom.
func sortedLater(p *Pass, obj types.Object, following []ast.Stmt) bool {
	for _, stmt := range following {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, _, ok := pkgSel(p.Info, call.Fun)
			if !ok || (pkg != "sort" && pkg != "slices") {
				return true
			}
			ast.Inspect(call, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && objectOf(p.Info, id) == obj {
					found = true
				}
				return !found
			})
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
