package obs

import (
	"reflect"
	"testing"
)

func TestCountersAndGauges(t *testing.T) {
	m := NewMetrics()
	m.Inc("invokes")
	m.Add("invokes", 2)
	m.Add("gbsec", 0.5)
	m.Set("warm", 3)
	m.Set("warm", 1) // last write wins
	m.SetMax("peak", 5)
	m.SetMax("peak", 2) // lower value must not regress the high-water mark
	m.SetMax("peak", 9)
	if got := m.Counter("invokes"); got != 3 {
		t.Fatalf("invokes = %v, want 3", got)
	}
	if got := m.Gauge("warm"); got != 1 {
		t.Fatalf("warm = %v, want 1", got)
	}
	if got := m.Gauge("peak"); got != 9 {
		t.Fatalf("peak = %v, want 9", got)
	}
	if got := m.Counter("absent"); got != 0 {
		t.Fatalf("absent counter = %v, want 0", got)
	}
}

func TestSnapshotSortedRegardlessOfInsertionOrder(t *testing.T) {
	a := NewMetrics()
	a.Inc("zeta")
	a.Inc("alpha")
	a.Set("mid", 1)
	b := NewMetrics()
	b.Set("mid", 1)
	b.Inc("alpha")
	b.Inc("zeta")
	sa, sb := a.Snapshot(), b.Snapshot()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("snapshots differ by insertion order:\n%+v\n%+v", sa, sb)
	}
	if sa.Counters[0].Name != "alpha" || sa.Counters[1].Name != "zeta" {
		t.Fatalf("counters not sorted: %+v", sa.Counters)
	}
}

func TestHistogramBuckets(t *testing.T) {
	m := NewMetrics()
	m.DefineHistogram("lat", []float64{1, 10, 100})
	m.Observe("lat", 0.5)  // <=1
	m.Observe("lat", 1)    // <=1 (bounds are inclusive upper edges)
	m.Observe("lat", 5)    // <=10
	m.Observe("lat", 1000) // overflow
	s := m.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("got %d histograms", len(s.Histograms))
	}
	h := s.Histograms[0].Hist
	wantCounts := []uint64{2, 1, 0, 1}
	if !reflect.DeepEqual(h.Counts, wantCounts) {
		t.Fatalf("counts = %v, want %v", h.Counts, wantCounts)
	}
	if h.Total != 4 || h.Sum != 1006.5 {
		t.Fatalf("total=%d sum=%v, want 4/1006.5", h.Total, h.Sum)
	}
}

func TestHistogramDefaultBucketsAndRedefineNoOp(t *testing.T) {
	m := NewMetrics()
	m.Observe("h", 0.5) // auto-creates with defaultBuckets
	m.DefineHistogram("h", []float64{1})
	m.Observe("h", 0.5)
	s := m.Snapshot()
	h := s.Histograms[0].Hist
	if len(h.Bounds) != len(defaultBuckets) {
		t.Fatalf("redefine replaced live histogram: bounds %v", h.Bounds)
	}
	if h.Total != 2 {
		t.Fatalf("total = %d, want 2 (counts dropped on redefine)", h.Total)
	}
}
