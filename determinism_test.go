package repro_test

// Determinism gate for the parallel experiment engine: the same seed must
// produce byte-identical tables whether the engine runs fully serial or
// heavily oversubscribed. The representative set below touches every
// parallelized matrix shape — the HPT systems x models cells (fig9), the
// training matrix (fig13), the validation allocation sweep (fig19x), the
// flattened ablation combos (abl-faults), the (n, model) table blocks
// (tab2), the truth-run fan-out (fig4), the planning-only loop (fig21a)
// and the sharded-kernel macro scenarios (macro-day, macro-trace,
// macro-chaos), which exercise the multi-shard event merge — and, for
// macro-chaos, the compiled fault-injection path — underneath the
// engine-level parallelism.

import (
	"testing"

	"repro/internal/experiments"
)

var determinismIDs = []string{"fig4", "fig9", "fig13", "fig19x", "fig21a", "abl-faults", "tab2", "macro-day", "macro-trace", "macro-chaos"}

func renderAll(t *testing.T, ids []string, seed uint64) string {
	t.Helper()
	var out string
	for _, o := range experiments.RunAll(ids, seed) {
		if o.Err != nil {
			t.Fatalf("%s: %v", o.ID, o.Err)
		}
		out += o.Table.String() + "\n" + o.Table.CSV() + "\n"
	}
	return out
}

func TestParallelOutputsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a representative artifact set twice")
	}
	const seed = 2023
	prev := experiments.Parallelism()
	defer experiments.SetParallelism(prev)

	experiments.SetParallelism(1)
	serial := renderAll(t, determinismIDs, seed)
	experiments.SetParallelism(8)
	parallel := renderAll(t, determinismIDs, seed)

	if serial != parallel {
		// Find the first diverging line for a readable failure.
		a, b := serial, parallel
		line, col := 1, 1
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				hi := i + 80
				if hi > len(a) {
					hi = len(a)
				}
				hib := hi
				if hib > len(b) {
					hib = len(b)
				}
				t.Fatalf("parallel output diverges from serial at line %d col %d:\nserial:   ...%q...\nparallel: ...%q...", line, col, a[lo:hi], b[lo:hib])
			}
			if a[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		t.Fatalf("parallel output length %d != serial length %d (common prefix identical)", len(parallel), len(serial))
	}
}

func TestRunAllPreservesRequestOrder(t *testing.T) {
	prev := experiments.Parallelism()
	defer experiments.SetParallelism(prev)
	experiments.SetParallelism(4)

	ids := []string{"tab4", "tab1", "fig7"} // cheap artifacts, shuffled order
	outcomes := experiments.RunAll(ids, 2023)
	if len(outcomes) != len(ids) {
		t.Fatalf("got %d outcomes, want %d", len(outcomes), len(ids))
	}
	for i, o := range outcomes {
		if o.ID != ids[i] {
			t.Fatalf("outcome %d is %q, want %q (request order not preserved)", i, o.ID, ids[i])
		}
		if o.Err != nil {
			t.Fatalf("%s: %v", o.ID, o.Err)
		}
		if o.Table == nil || o.Table.ID != ids[i] {
			t.Fatalf("outcome %d table mismatch", i)
		}
	}
}

func TestRunAllUnknownIDIsPerOutcomeError(t *testing.T) {
	outcomes := experiments.RunAll([]string{"tab1", "no-such-artifact"}, 2023)
	if outcomes[0].Err != nil {
		t.Fatalf("tab1 failed: %v", outcomes[0].Err)
	}
	if outcomes[1].Err == nil {
		t.Fatal("unknown id did not produce an error outcome")
	}
}
