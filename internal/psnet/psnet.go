// Package psnet is a TCP parameter server — the VM-PS of the paper,
// realized over real sockets with encoding/gob. Unlike the stateless object
// store, the server aggregates gradients locally (the (2n-2) pattern of
// Fig. 5): workers PUSH a gradient and block until the round completes,
// then PULL the updated model. Rounds follow Bulk Synchronous Parallel
// semantics: the server averages exactly one gradient from each of the n
// registered workers before applying the update.
package psnet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Op identifies a request type.
type Op uint8

const (
	// OpPush submits a gradient for the current round and blocks until the
	// round's update is applied.
	OpPush Op = iota + 1
	// OpPull fetches the current model.
	OpPull
	// OpInit seeds the model (first caller wins).
	OpInit
)

// Request is the client -> server message.
type Request struct {
	Op     Op
	Worker int
	Round  int
	Vec    []float64 // gradient (Push) or initial model (Init)
}

// Response is the server -> client message.
type Response struct {
	OK    bool
	Err   string
	Round int
	Vec   []float64 // model (Pull) or nothing
}

// Server aggregates gradients for a fixed worker group.
type Server struct {
	workers int
	lr      float64

	mu      sync.Mutex
	cond    *sync.Cond
	model   []float64
	round   int
	pending map[int][]float64 // worker -> gradient for the current round
	// linkDelay is the injected per-link latency (fault schedules degrade
	// individual worker links); the wildcard key -1 covers workers without
	// an explicit entry. Applied per request on the serving goroutine after
	// handle returns, so a slow link delays only its own worker's replies —
	// other links and the aggregation round proceed unblocked.
	linkDelay map[int]time.Duration

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}

	pushes, pulls     int64
	bytesIn, bytesOut int64
}

// NewServer returns a parameter server expecting `workers` BSP participants
// and applying averaged gradients with the given learning rate.
func NewServer(workers int, lr float64) (*Server, error) {
	if workers < 1 {
		return nil, fmt.Errorf("psnet: need at least one worker, got %d", workers)
	}
	if lr <= 0 {
		return nil, fmt.Errorf("psnet: non-positive learning rate %g", lr)
	}
	s := &Server{
		workers: workers,
		lr:      lr,
		pending: make(map[int][]float64),
		closed:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Listen starts serving on addr ("127.0.0.1:0" for an ephemeral port) and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // connection closed or corrupted
		}
		resp := s.handle(&req)
		if d := s.linkDelayFor(req.Worker); d > 0 {
			time.Sleep(d)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *Request) *Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch req.Op {
	case OpInit:
		s.bytesIn += 8 * int64(len(req.Vec))
		if s.model == nil {
			s.model = append([]float64(nil), req.Vec...)
		}
		return &Response{OK: true, Round: s.round}

	case OpPull:
		s.pulls++
		if s.model == nil {
			return &Response{Err: "model not initialized"}
		}
		s.bytesOut += 8 * int64(len(s.model))
		return &Response{OK: true, Round: s.round, Vec: append([]float64(nil), s.model...)}

	case OpPush:
		s.pushes++
		s.bytesIn += 8 * int64(len(req.Vec))
		if s.model == nil {
			return &Response{Err: "model not initialized"}
		}
		if len(req.Vec) != len(s.model) {
			return &Response{Err: fmt.Sprintf("gradient dim %d != model dim %d", len(req.Vec), len(s.model))}
		}
		if req.Round != s.round {
			return &Response{Err: fmt.Sprintf("stale round %d (current %d)", req.Round, s.round)}
		}
		if _, dup := s.pending[req.Worker]; dup {
			return &Response{Err: fmt.Sprintf("worker %d pushed twice in round %d", req.Worker, req.Round)}
		}
		s.pending[req.Worker] = append([]float64(nil), req.Vec...)
		myRound := s.round
		if len(s.pending) == s.workers {
			// Aggregate locally — the whole point of VM-PS — and advance.
			inv := s.lr / float64(s.workers)
			for _, g := range s.pending {
				for i, v := range g {
					s.model[i] -= inv * v
				}
			}
			s.pending = make(map[int][]float64)
			s.round++
			s.cond.Broadcast()
		} else {
			for s.round == myRound {
				s.cond.Wait()
			}
		}
		return &Response{OK: true, Round: s.round}

	default:
		return &Response{Err: "unknown op"}
	}
}

// SetLinkDelay injects d of extra latency on one worker's link (a fault
// schedule's per-link degradation). worker -1 sets the wildcard delay for
// every worker without an explicit entry; d <= 0 removes the entry. The
// delay is added to each of the worker's request round trips outside the
// server mutex, so a degraded straggler link stalls only its own replies.
func (s *Server) SetLinkDelay(worker int, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d <= 0 {
		delete(s.linkDelay, worker)
		return
	}
	if s.linkDelay == nil {
		s.linkDelay = make(map[int]time.Duration)
	}
	s.linkDelay[worker] = d
}

// linkDelayFor returns the injected latency for one worker's link: its own
// entry if present, else the wildcard (-1) entry.
func (s *Server) linkDelayFor(worker int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.linkDelay) == 0 {
		return 0
	}
	if d, ok := s.linkDelay[worker]; ok {
		return d
	}
	return s.linkDelay[-1]
}

// Round reports the completed round count.
func (s *Server) Round() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// Model returns a copy of the current model.
func (s *Server) Model() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.model...)
}

// Stats reports the operation counters.
func (s *Server) Stats() (pushes, pulls int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushes, s.pulls
}

// WireStats summarizes the server's traffic: request counts plus the
// parameter-vector payload volume (8 bytes per float64; framing excluded).
type WireStats struct {
	Pushes, Pulls     int64
	BytesIn, BytesOut int64
}

// WireStats returns a snapshot of the traffic counters.
func (s *Server) WireStats() WireStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return WireStats{Pushes: s.pushes, Pulls: s.pulls, BytesIn: s.bytesIn, BytesOut: s.bytesOut}
}

// Close stops the listener and waits for connections to drain. Blocked
// pushers are woken with an error-free broadcast; their connections close.
func (s *Server) Close() error {
	close(s.closed)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// ErrClosed is returned by clients of a closed server.
var ErrClosed = errors.New("psnet: server closed")

// Client is one worker's connection to the parameter server.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	worker int
}

// Dial connects worker `worker` to the server at addr.
func Dial(addr string, worker int) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn, worker: worker,
		enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn),
	}, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	req.Worker = c.worker
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("psnet: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("psnet: recv: %w", err)
	}
	if resp.Err != "" {
		return nil, errors.New("psnet: " + resp.Err)
	}
	return &resp, nil
}

// Init seeds the model (idempotent across workers; the first wins).
func (c *Client) Init(model []float64) error {
	_, err := c.roundTrip(&Request{Op: OpInit, Vec: model})
	return err
}

// Pull fetches the current model and round.
func (c *Client) Pull() ([]float64, int, error) {
	resp, err := c.roundTrip(&Request{Op: OpPull})
	if err != nil {
		return nil, 0, err
	}
	return resp.Vec, resp.Round, nil
}

// Push submits the worker's gradient for round and blocks until the
// server applies the round's aggregated update.
func (c *Client) Push(round int, grad []float64) (newRound int, err error) {
	resp, err := c.roundTrip(&Request{Op: OpPush, Round: round, Vec: grad})
	if err != nil {
		return 0, err
	}
	return resp.Round, nil
}
