// Package lint is cescalint: a determinism-enforcing static-analysis
// driver for the CE-scaling tree.
//
// Every result this reproduction publishes rests on one invariant the
// compiler cannot check: bit-identical determinism. Stdout must be
// byte-identical at any -parallel level, the DES clock must never read wall
// time, and floating-point summation order must be fixed. Runtime tests
// catch a violation only when one happens to exercise it; cescalint makes
// the invariant structural by failing `make check` at parse time.
//
// The driver walks the module, type-checks each package with the standard
// library's export data plus the module's own source (zero dependencies, no
// network), and runs a pluggable set of domain analyzers. Findings print
// deterministically — sorted by file:line:column — and can be suppressed
// only by an explicit, reasoned pragma on the offending line or the line
// above:
//
//	//cescalint:allow walltime -- stderr-only diagnostic, never on stdout
//
// A pragma that names an unknown analyzer, or omits the "-- reason", is
// itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Scope declares which packages an analyzer runs on.
type Scope int

const (
	// ScopeAll runs the analyzer on every package in the module.
	ScopeAll Scope = iota
	// ScopeDeterministic runs the analyzer only on packages the policy
	// marks deterministic.
	ScopeDeterministic
)

// An Analyzer is one domain check over a type-checked package.
type Analyzer struct {
	Name  string
	Doc   string
	Scope Scope
	Run   func(*Pass)
}

// All returns the full analyzer suite, in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{Walltime, GlobalRand, MapOrder, FPReduce, ImportBoundary, Shardsafe}
}

// A Finding is one rule violation at a source position. File is relative to
// the module root so output is stable across checkouts.
type Finding struct {
	File     string
	Line     int
	Col      int
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset   *token.FileSet
	Path   string // import path of the package under analysis
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Policy *Policy

	analyzer string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Target is one package directory to lint, with the import path it is
// analyzed under.
type Target struct {
	Dir  string
	Path string
}

// Runner drives the analyzer suite over a module.
type Runner struct {
	Root      string // module root directory (holds go.mod)
	Module    string // module path
	Policy    *Policy
	Analyzers []*Analyzer

	fset *token.FileSet
	imp  *moduleImporter
}

// NewRunner returns a Runner over the module rooted at root with the full
// analyzer suite.
func NewRunner(root, module string, policy *Policy) *Runner {
	fset := token.NewFileSet()
	return &Runner{
		Root:      root,
		Module:    module,
		Policy:    policy,
		Analyzers: All(),
		fset:      fset,
		imp:       newModuleImporter(root, module, fset),
	}
}

// DiscoverTargets walks the module tree and returns every package directory
// (skipping testdata and hidden directories), sorted by import path.
func (r *Runner) DiscoverTargets() ([]Target, error) {
	var targets []Target
	err := filepath.WalkDir(r.Root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != r.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := build.ImportDir(path, 0); err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil // directory without Go files; keep walking
			}
			return err
		}
		rel, err := filepath.Rel(r.Root, path)
		if err != nil {
			return err
		}
		importPath := r.Module
		if rel != "." {
			importPath = r.Module + "/" + filepath.ToSlash(rel)
		}
		targets = append(targets, Target{Dir: path, Path: importPath})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Path < targets[j].Path })
	return targets, nil
}

// Run lints the given targets and returns all surviving findings sorted by
// (file, line, column, analyzer, message). The sort plus the deterministic
// target order make the output byte-identical run to run.
func (r *Runner) Run(targets []Target) ([]Finding, error) {
	var findings []Finding
	for _, t := range targets {
		fs, err := r.lintDir(t.Dir, t.Path)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	for i := range findings {
		if rel, err := filepath.Rel(r.Root, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = filepath.ToSlash(rel)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// lintDir type-checks one package directory and runs every applicable
// analyzer, then filters findings through the file's allow-pragmas.
func (r *Runner) lintDir(dir, importPath string) ([]Finding, error) {
	files, err := r.imp.parseDir(dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: r.imp}
	pkg, err := conf.Check(importPath, r.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}

	pragmas, findings := r.collectPragmas(files)
	for _, a := range r.Analyzers {
		if a.Scope == ScopeDeterministic && !r.Policy.IsDeterministic(importPath) {
			continue
		}
		pass := &Pass{
			Fset:     r.fset,
			Path:     importPath,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Policy:   r.Policy,
			analyzer: a.Name,
			findings: &findings,
		}
		a.Run(pass)
	}
	return suppress(findings, pragmas), nil
}

// pragma is one parsed //cescalint:allow comment.
type pragma struct {
	file     string
	line     int
	analyzer string
}

const pragmaPrefix = "//cescalint:"

// collectPragmas parses every cescalint directive in files. Malformed
// directives (unknown verb, unknown analyzer name, missing reason) are
// returned as findings so a misspelled suppression cannot silently widen
// the allowed surface.
func (r *Runner) collectPragmas(files []*ast.File) ([]pragma, []Finding) {
	known := make(map[string]bool, len(r.Analyzers))
	for _, a := range r.Analyzers {
		known[a.Name] = true
	}
	var pragmas []pragma
	var findings []Finding
	report := func(pos token.Pos, format string, args ...any) {
		position := r.fset.Position(pos)
		findings = append(findings, Finding{
			File:     position.Filename,
			Line:     position.Line,
			Col:      position.Column,
			Analyzer: "pragma",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, pragmaPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, pragmaPrefix)
				if !strings.HasPrefix(rest, "allow ") && rest != "allow" {
					report(c.Pos(), "unknown cescalint directive %q (only \"allow\" exists)", strings.Fields(rest)[0])
					continue
				}
				spec := strings.TrimPrefix(rest, "allow")
				name, reason, hasReason := strings.Cut(spec, "--")
				name = strings.TrimSpace(name)
				if name == "" {
					report(c.Pos(), "cescalint:allow pragma names no analyzer")
					continue
				}
				if !known[name] {
					report(c.Pos(), "cescalint:allow pragma names unknown analyzer %q", name)
					continue
				}
				if !hasReason || strings.TrimSpace(reason) == "" {
					report(c.Pos(), "cescalint:allow %s pragma requires a reason: `//cescalint:allow %s -- <why>`", name, name)
					continue
				}
				position := r.fset.Position(c.Pos())
				pragmas = append(pragmas, pragma{file: position.Filename, line: position.Line, analyzer: name})
			}
		}
	}
	return pragmas, findings
}

// suppress drops findings covered by a same-analyzer pragma on the finding's
// own line or the line directly above it.
func suppress(findings []Finding, pragmas []pragma) []Finding {
	if len(pragmas) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, f := range findings {
		allowed := false
		for _, p := range pragmas {
			if p.analyzer == f.Analyzer && p.file == f.File && (p.line == f.Line || p.line == f.Line-1) {
				allowed = true
				break
			}
		}
		if !allowed {
			kept = append(kept, f)
		}
	}
	return kept
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if path, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(path), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
