package livebackend_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/platform"
	"repro/internal/platform/livebackend"
	"repro/internal/trainer"
	"repro/internal/workload"
)

// smallGrid keeps the live run cheap: a handful of workers per group, all
// four storage services so both the object-store and parameter-server wire
// patterns can be exercised.
func smallGrid() cost.Grid {
	return cost.Grid{
		Ns:       []int{2, 4, 8},
		MemsMB:   []int{1024, 2048},
		Storages: platform.StorageKinds(),
	}
}

// TestSimLiveDecisionParity runs the same small LR training job through the
// adaptive scheduler on the simulated and the live backend and asserts the
// controller makes identical allocation decisions: same per-epoch
// allocations, same restarts, same JCT and cost. The live run additionally
// executes a real synchronization barrier per epoch across real workers.
func TestSimLiveDecisionParity(t *testing.T) {
	w, err := workload.ByName("LR-Higgs")
	if err != nil {
		t.Fatal(err)
	}
	fw := core.NewWithGrid(w, smallGrid())
	opt := core.Options{QoS: 6 * 3600, Delta: 0.02, Seed: 11}

	simOut, err := fw.Train(opt, trainer.NewRunner(opt.Seed))
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}

	lb, err := livebackend.New(livebackend.Config{Seed: opt.Seed})
	if err != nil {
		t.Fatalf("live backend: %v", err)
	}
	defer lb.Close()
	liveOut, err := fw.Train(opt, trainer.NewRunnerOn(lb))
	if err != nil {
		t.Fatalf("live run: %v", err)
	}

	simRes, liveRes := simOut.Result, liveOut.Result
	if simRes.Epochs != liveRes.Epochs {
		t.Fatalf("epochs diverge: sim %d, live %d", simRes.Epochs, liveRes.Epochs)
	}
	if simRes.Restarts != liveRes.Restarts {
		t.Errorf("restarts diverge: sim %d, live %d", simRes.Restarts, liveRes.Restarts)
	}
	for i := range simRes.Trace {
		if simRes.Trace[i].Alloc != liveRes.Trace[i].Alloc {
			t.Fatalf("epoch %d allocation diverges: sim %+v, live %+v",
				i+1, simRes.Trace[i].Alloc, liveRes.Trace[i].Alloc)
		}
	}
	if simRes.JCT != liveRes.JCT {
		t.Errorf("JCT diverges: sim %v, live %v", simRes.JCT, liveRes.JCT)
	}
	if simRes.TotalCost != liveRes.TotalCost {
		t.Errorf("cost diverges: sim %v, live %v", simRes.TotalCost, liveRes.TotalCost)
	}
	if !liveRes.Converged {
		t.Error("live run did not converge")
	}

	// The parity is not vacuous: the live substrate really did the work.
	s := lb.Stats()
	if s.Invocations == 0 || s.EpochBarriers == 0 {
		t.Fatalf("live substrate did no real work: %+v", s)
	}
	if int(s.EpochBarriers) != liveRes.Epochs {
		t.Errorf("barriers %d != epochs %d", s.EpochBarriers, liveRes.Epochs)
	}
	if s.ObjPuts == 0 {
		t.Error("no real object-store traffic")
	}
}

// TestLiveParameterServerPath pins storage to VM-PS so every live epoch runs
// a real TCP parameter-server round (push/pull with a BSP barrier).
func TestLiveParameterServerPath(t *testing.T) {
	w, err := workload.ByName("LR-Higgs")
	if err != nil {
		t.Fatal(err)
	}
	fw := core.NewWithGrid(w, smallGrid())
	pin := platform.VMPS
	opt := core.Options{QoS: 6 * 3600, Seed: 3, PinStorage: &pin}

	lb, err := livebackend.New(livebackend.Config{Seed: opt.Seed})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	out, err := fw.Train(opt, trainer.NewRunnerOn(lb))
	if err != nil {
		t.Fatalf("live run: %v", err)
	}
	if !out.Result.Converged {
		t.Error("live VM-PS run did not converge")
	}
	if s := lb.Stats(); s.PSRounds == 0 {
		t.Errorf("no parameter-server rounds ran: %+v", s)
	}
}
