#!/bin/sh
# Performance snapshot for the PR 6 sharded-kernel pass: microbenchmarks of
# the DES kernel (single-queue fast path, global merge, cross-shard posts)
# plus the macro-day million-invocation scenario at shards=1 and shards=8
# with the parallel window executor, recording events/sec and peak RSS.
# Writes BENCH_PR6.json next to the numbers from the pre-shard kernel
# (measured on the same host with these benchmarks before the rewrite).
#
# Honesty note: the shards=8/workers=8 run only beats shards=1 when the
# host has cores to run windows concurrently; the recorded "cores" field is
# runtime.NumCPU as reported by cebench, and on a 1-CPU container the
# parallel run measures pure overhead, not speedup. The determinism gates
# hold at every setting regardless.
#
#   scripts/bench.sh                 # full run, writes BENCH_PR6.json
#   BENCH_COUNT=5 scripts/bench.sh   # more benchmark samples for benchstat
#   BENCH_OUT=/tmp/b.json scripts/bench.sh
#   MACRO_TENANTS=64 MACRO_PER_TENANT=15625 scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_PR6.json}"
COUNT="${BENCH_COUNT:-1}"
SEED=2023
TENANTS="${MACRO_TENANTS:-64}"
PER_TENANT="${MACRO_PER_TENANT:-15625}"
MICRO=/tmp/cebench_micro_bench.txt

echo "== kernel microbenchmarks, count=$COUNT"
go test -run '^$' \
	-bench 'BenchmarkScheduleRun$|BenchmarkScheduleRunFanout$|BenchmarkScheduleCancel$|BenchmarkShardedMergeRun$|BenchmarkShardedPost$' \
	-benchmem -count "$COUNT" ./internal/sim/ | tee "$MICRO"

echo "== macro-day: $TENANTS tenants x $PER_TENANT invocations (seed $SEED)"
go build -o /tmp/cebench.bench ./cmd/cebench

run_macro() { # $1=shards $2=workers $3=stdout-file $4=stderr-file
	/tmp/cebench.bench -seed "$SEED" -rusage \
		-macro-tenants "$TENANTS" -macro-per-tenant "$PER_TENANT" \
		-shards "$1" -sim-workers "$2" macro-day >"$3" 2>"$4"
}

t0=$(date +%s%3N)
run_macro 1 1 /tmp/macro.s1.txt /tmp/macro.s1.err
t1=$(date +%s%3N)
s1_ms=$((t1 - t0))

t0=$(date +%s%3N)
run_macro 8 8 /tmp/macro.s8.txt /tmp/macro.s8.err
t1=$(date +%s%3N)
s8_ms=$((t1 - t0))

cmp /tmp/macro.s1.txt /tmp/macro.s8.txt || {
	echo "macro-day stdout differs between shards=1 and shards=8"; exit 1;
}

EVENTS="$(sed -n 's/.*events=\([0-9]*\).*/\1/p' /tmp/macro.s1.txt | tail -1)"
[ -n "$EVENTS" ] || EVENTS=0
RSS1="$(sed -n 's/.*peak RSS \([0-9]*\) kB.*/\1/p' /tmp/macro.s1.err | tail -1)"
RSS8="$(sed -n 's/.*peak RSS \([0-9]*\) kB.*/\1/p' /tmp/macro.s8.err | tail -1)"
CORES="$(sed -n 's/.*cores=\([0-9]*\).*/\1/p' /tmp/macro.s1.err | tail -1)"
[ -n "$RSS1" ] || RSS1=0
[ -n "$RSS8" ] || RSS8=0
[ -n "$CORES" ] || CORES=0

echo "shards=1/workers=1: ${s1_ms}ms, peak RSS ${RSS1}kB"
echo "shards=8/workers=8: ${s8_ms}ms, peak RSS ${RSS8}kB"
echo "events: $EVENTS (byte-identical stdout across configs), cores: $CORES"

# Summarize microbenchmarks into JSON: mean ns/op and allocs/op per name.
awk -v s1_ms="$s1_ms" -v s8_ms="$s8_ms" -v events="$EVENTS" \
	-v rss1="$RSS1" -v rss8="$RSS8" -v cores="$CORES" -v seed="$SEED" \
	-v tenants="$TENANTS" -v per_tenant="$PER_TENANT" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")     { ns[name] += $(i-1); nsn[name]++ }
		if ($(i) == "allocs/op") { al[name] += $(i-1); aln[name]++ }
	}
}
END {
	printf "{\n"
	printf "  \"pr\": 6,\n"
	printf "  \"seed\": %d,\n", seed
	printf "  \"note\": \"after = sharded kernel (per-shard SoA heaps, global (time,priority,seq) merge, conservative-lookahead windows, Post mailboxes); before = pre-PR6 single inlined heap on the same host. events_per_sec are honest single-host numbers: with cores=1 the workers=8 run measures executor overhead, not speedup — the >=2x shards=8 target needs a multi-core host.\",\n"
	printf "  \"before\": {\n"
	printf "    \"BenchmarkScheduleRun\": {\"ns_per_op\": 12.05, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkScheduleRunFanout\": {\"ns_per_op\": 77.65, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkScheduleCancel\": {\"ns_per_op\": 27.76, \"allocs_per_op\": 0}\n"
	printf "  },\n"
	printf "  \"after\": {\n"
	for (name in ns) {
		printf "    \"%s\": {\"ns_per_op\": %.2f", name, ns[name] / nsn[name]
		if (aln[name] > 0) printf ", \"allocs_per_op\": %.1f", al[name] / aln[name]
		printf "},\n"
	}
	printf "    \"macro_day\": {\n"
	printf "      \"tenants\": %d,\n", tenants
	printf "      \"invocations\": %d,\n", tenants * per_tenant
	printf "      \"events\": %d,\n", events
	printf "      \"cores\": %d,\n", cores
	eps1 = s1_ms > 0 ? events * 1000.0 / s1_ms : 0
	eps8 = s8_ms > 0 ? events * 1000.0 / s8_ms : 0
	printf "      \"shards1_ms\": %d,\n", s1_ms
	printf "      \"shards1_events_per_sec\": %.0f,\n", eps1
	printf "      \"shards1_peak_rss_kb\": %d,\n", rss1
	printf "      \"shards8_workers8_ms\": %d,\n", s8_ms
	printf "      \"shards8_workers8_events_per_sec\": %.0f,\n", eps8
	printf "      \"shards8_workers8_peak_rss_kb\": %d,\n", rss8
	printf "      \"stdout_identical_across_configs\": true\n"
	printf "    }\n"
	printf "  }\n"
	printf "}\n"
}' "$MICRO" > "$OUT"

echo "wrote $OUT"
