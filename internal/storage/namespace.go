package storage

// Namespaced is a key-prefixed view of a shared Store: tenant t's
// checkpoint "ckpt/3" lives under "<prefix>/ckpt/3", so many tenants (one
// per kernel shard in the sharded macro scenarios) can share one Store
// without key collisions. The underlying Store's mutex makes concurrent
// cross-shard access safe, and because every value is keyed, the final
// contents are independent of the interleaving — only the shared operation
// counters accumulate across tenants (sums, so order-independent too).
type Namespaced struct {
	st     *Store
	prefix string
}

// Namespace returns a view of st whose keys are transparently prefixed
// with prefix + "/".
func (st *Store) Namespace(prefix string) *Namespaced {
	return &Namespaced{st: st, prefix: prefix + "/"}
}

// Prefix returns the namespace prefix, including the trailing separator.
func (n *Namespaced) Prefix() string { return n.prefix }

// Put stores a copy of vec under the namespaced key.
func (n *Namespaced) Put(key string, vec []float64) { n.st.Put(n.prefix+key, vec) }

// Get returns a copy of the vector under the namespaced key, or ok=false.
func (n *Namespaced) Get(key string) ([]float64, bool) { return n.st.Get(n.prefix + key) }

// Delete removes the namespaced key; deleting an absent key is a no-op.
func (n *Namespaced) Delete(key string) { n.st.Delete(n.prefix + key) }
