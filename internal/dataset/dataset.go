// Package dataset describes the evaluation datasets and generates synthetic
// stand-ins for them.
//
// Two concerns are deliberately separated:
//
//   - Spec carries the *nominal* properties the performance and cost models
//     consume (total size in MB, sample count, dimensionality) — these match
//     the real Higgs / YFCC100M / Cifar10 / IMDb datasets the paper uses;
//   - the generators produce *real numeric data* at a tractable scale for
//     the SGD engine, so training convergence is genuinely stochastic. The
//     trainer uses generated data for the numerics and the Spec for timing
//     and billing (documented as a substitution in DESIGN.md).
package dataset

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// Task distinguishes what kind of supervised problem a dataset poses.
type Task int

const (
	// BinaryClassification labels are ±1.
	BinaryClassification Task = iota
	// Regression labels are real-valued.
	Regression
	// MultiClass labels are 0..Classes-1 (used by image/NLP profiles whose
	// training is curve-driven rather than numeric).
	MultiClass
)

func (t Task) String() string {
	switch t {
	case BinaryClassification:
		return "binary"
	case Regression:
		return "regression"
	case MultiClass:
		return "multiclass"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// Spec describes a dataset's nominal properties for the analytical models.
type Spec struct {
	Name     string
	Task     Task
	Samples  int     // number of training instances
	Features int     // dimensionality per instance
	Classes  int     // label arity for MultiClass
	SizeMB   float64 // total on-storage size (the D of Eq. 2)
}

// Higgs returns the HIGGS profile: 11M Monte-Carlo instances, 28 features,
// binary classification (~2.5 GB as dense float64).
func Higgs() Spec {
	return Spec{Name: "Higgs", Task: BinaryClassification, Samples: 11_000_000, Features: 28, SizeMB: 2464}
}

// YFCC returns the YFCC100M-subset profile: image feature vectors of 4096
// dimensions; the paper trains LR/SVM to a squared-loss target, so the task
// is regression. We use a 200k-instance subset (~6.5 GB).
func YFCC() Spec {
	return Spec{Name: "YFCC", Task: Regression, Samples: 200_000, Features: 4096, SizeMB: 6554}
}

// Cifar10 returns the CIFAR-10 profile: 60k 32x32x3 images, 10 classes.
func Cifar10() Spec {
	return Spec{Name: "Cifar10", Task: MultiClass, Samples: 60_000, Features: 3072, Classes: 10, SizeMB: 185}
}

// IMDb returns the IMDb review profile: 25k sentences, average length 292
// tokens.
func IMDb() Spec {
	return Spec{Name: "IMDb", Task: MultiClass, Samples: 25_000, Features: 292, Classes: 2, SizeMB: 30}
}

// ByName returns the named dataset spec.
func ByName(name string) (Spec, error) {
	switch name {
	case "Higgs", "higgs":
		return Higgs(), nil
	case "YFCC", "yfcc":
		return YFCC(), nil
	case "Cifar10", "cifar10", "cifar":
		return Cifar10(), nil
	case "IMDb", "imdb":
		return IMDb(), nil
	default:
		return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
	}
}

// PartitionSizeMB returns the per-function data share when the dataset is
// split evenly across n functions.
func (s Spec) PartitionSizeMB(n int) float64 {
	if n < 1 {
		n = 1
	}
	return s.SizeMB / float64(n)
}

// Matrix is a dense row-major design matrix with labels: real numbers the
// SGD engine trains on. A Matrix is effectively immutable once generated —
// trainers only read X and Y — which is what makes shard sharing across
// concurrent trials safe.
type Matrix struct {
	Rows, Cols int
	X          []float64 // len Rows*Cols, row-major
	Y          []float64 // len Rows; ±1 for classification, real for regression

	mu     sync.Mutex
	shards map[int][]*Matrix // memoized Partition results, keyed by shard count
}

// Row returns the i-th feature vector (a view, not a copy).
func (m *Matrix) Row(i int) []float64 {
	return m.X[i*m.Cols : (i+1)*m.Cols]
}

// Partition splits the matrix into n contiguous shards of near-equal size
// (the first Rows%n shards get one extra row). Shards share the underlying
// arrays.
func (m *Matrix) Partition(n int) []*Matrix {
	if n < 1 {
		n = 1
	}
	if n > m.Rows {
		n = m.Rows
	}
	out := make([]*Matrix, n)
	base, extra := m.Rows/n, m.Rows%n
	start := 0
	for i := range out {
		rows := base
		if i < extra {
			rows++
		}
		out[i] = &Matrix{
			Rows: rows, Cols: m.Cols,
			X: m.X[start*m.Cols : (start+rows)*m.Cols],
			Y: m.Y[start : start+rows],
		}
		start += rows
	}
	return out
}

// Shards returns Partition(n) memoized on the matrix: the first call for a
// given n computes the shard views, every later call (from any goroutine)
// returns the same read-only shard set. Successive-Halving runs many trials
// over one matrix, so sharding is paid once per (matrix, n) instead of once
// per trial. Shards never copies data — the returned matrices are views —
// and the memo lives on the matrix itself, so it is reclaimed with it.
func (m *Matrix) Shards(n int) []*Matrix {
	if n < 1 {
		n = 1
	}
	if n > m.Rows {
		n = m.Rows
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.shards[n]; ok {
		return s
	}
	if m.shards == nil {
		m.shards = make(map[int][]*Matrix, 2)
	}
	s := m.Partition(n)
	m.shards[n] = s
	return s
}

// GenConfig controls synthetic data generation.
type GenConfig struct {
	Samples  int
	Features int
	// NoiseFlip is the label-flip probability for classification: it sets
	// the Bayes error and hence the achievable loss floor (Higgs-like data
	// bottoms out near logloss 0.63).
	NoiseFlip float64
	// NoiseStd is additive label noise for regression.
	NoiseStd float64
	// Scale multiplies the ground-truth weights (signal strength).
	Scale float64
}

// GenerateBinary produces a synthetic binary classification dataset: x ~
// N(0, I), y = sign(w·x), with labels flipped with probability NoiseFlip.
// The generator is deterministic for a given RNG stream.
func GenerateBinary(rng *sim.Rand, cfg GenConfig) *Matrix {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	w := make([]float64, cfg.Features)
	for i := range w {
		w[i] = rng.NormFloat64() * cfg.Scale
	}
	m := &Matrix{Rows: cfg.Samples, Cols: cfg.Features,
		X: make([]float64, cfg.Samples*cfg.Features),
		Y: make([]float64, cfg.Samples)}
	for r := 0; r < cfg.Samples; r++ {
		dot := 0.0
		row := m.X[r*cfg.Features : (r+1)*cfg.Features]
		for c := range row {
			v := rng.NormFloat64()
			row[c] = v
			dot += v * w[c]
		}
		y := 1.0
		if dot < 0 {
			y = -1
		}
		m.Y[r] = y
	}
	// Flips are drawn in a second pass so the feature stream is identical
	// for any NoiseFlip setting (useful for controlled experiments).
	if cfg.NoiseFlip > 0 {
		for r := range m.Y {
			if rng.Float64() < cfg.NoiseFlip {
				m.Y[r] = -m.Y[r]
			}
		}
	}
	return m
}

// GenerateRegression produces a synthetic regression dataset: x ~ N(0, I),
// y = w·x + N(0, NoiseStd).
func GenerateRegression(rng *sim.Rand, cfg GenConfig) *Matrix {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	w := make([]float64, cfg.Features)
	for i := range w {
		w[i] = rng.NormFloat64() * cfg.Scale
	}
	m := &Matrix{Rows: cfg.Samples, Cols: cfg.Features,
		X: make([]float64, cfg.Samples*cfg.Features),
		Y: make([]float64, cfg.Samples)}
	for r := 0; r < cfg.Samples; r++ {
		dot := 0.0
		row := m.X[r*cfg.Features : (r+1)*cfg.Features]
		for c := range row {
			v := rng.NormFloat64()
			row[c] = v
			dot += v * w[c]
		}
		m.Y[r] = dot + rng.NormFloat64()*cfg.NoiseStd
	}
	return m
}

// TrainingSample returns a tractable real-data stand-in for a nominal Spec,
// preserving the task, feature count (capped to keep memory sane) and noise
// character while downsampling the row count. The nominal Spec continues to
// drive timing/billing.
func (s Spec) TrainingSample(rng *sim.Rand, maxRows int) *Matrix {
	rows := s.Samples
	if rows > maxRows {
		rows = maxRows
	}
	features := s.Features
	if features > 256 {
		features = 256
	}
	switch s.Task {
	case Regression:
		return GenerateRegression(rng, GenConfig{Samples: rows, Features: features, NoiseStd: 7, Scale: 1})
	default:
		return GenerateBinary(rng, GenConfig{Samples: rows, Features: features, NoiseFlip: 0.22, Scale: 1})
	}
}
