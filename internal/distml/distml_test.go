package distml

import (
	"math"
	"net/http/httptest"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/objstore"
	"repro/internal/psnet"
	"repro/internal/sim"
)

func trainingData(t *testing.T) *dataset.Matrix {
	t.Helper()
	return dataset.GenerateBinary(sim.NewRand(11), dataset.GenConfig{Samples: 800, Features: 8})
}

func baseConfig(t *testing.T) Config {
	return Config{
		Objective:   ml.Logistic{},
		Data:        trainingData(t),
		Workers:     4,
		BatchPerWkr: 50,
		LR:          0.5,
		Epochs:      6,
		Seed:        3,
	}
}

func TestEncodeDecodeVecRoundTrip(t *testing.T) {
	if err := quick.Check(func(v []float64) bool {
		got, err := DecodeVec(EncodeVec(v))
		if err != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] && !(math.IsNaN(got[i]) && math.IsNaN(v[i])) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeVecRejectsBadLength(t *testing.T) {
	if _, err := DecodeVec(make([]byte, 7)); err == nil {
		t.Error("odd payload should fail")
	}
}

func TestConfigValidation(t *testing.T) {
	good := baseConfig(t)
	cases := []func(*Config){
		func(c *Config) { c.Objective = nil },
		func(c *Config) { c.Data = nil },
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.Workers = 10000 },
		func(c *Config) { c.LR = 0 },
		func(c *Config) { c.Epochs = 0 },
	}
	for i, mutate := range cases {
		cfg := good
		mutate(&cfg)
		if err := cfg.validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestObjectStorePatternConverges(t *testing.T) {
	srv := objstore.NewServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cfg := baseConfig(t)
	res, err := TrainObjectStore(cfg, objstore.NewClient(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	// 800 rows / 4 workers = 200 rows per shard; 200/50 batch = 4
	// iterations per epoch.
	if want := cfg.Epochs * 4; res.Rounds != want {
		t.Fatalf("rounds = %d, want %d", res.Rounds, want)
	}
	if len(res.LossTrace) != cfg.Epochs {
		t.Fatalf("loss trace has %d entries, want %d", len(res.LossTrace), cfg.Epochs)
	}
	first, last := res.LossTrace[0], res.LossTrace[len(res.LossTrace)-1]
	if last >= first {
		t.Errorf("loss did not decrease over the wire: %g -> %g", first, last)
	}
	if last > 0.35 {
		t.Errorf("separable data should reach low loss, got %g", last)
	}
	// The pattern's request signature: n gradient PUTs + 1 model PUT per
	// round (plus the seed), and polling GETs on top.
	st := srv.Stats()
	wantPuts := uint64(res.Rounds*(cfg.Workers+1) + 1)
	if st.Puts != wantPuts {
		t.Errorf("PUTs = %d, want %d", st.Puts, wantPuts)
	}
	if st.Gets <= uint64(res.Rounds*cfg.Workers) {
		t.Errorf("GETs = %d; the stateless pattern must at least re-pull per worker per round", st.Gets)
	}
}

func TestParamServerPatternConverges(t *testing.T) {
	cfg := baseConfig(t)
	ps, err := psnet.NewServer(cfg.Workers, cfg.LR)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := ps.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	res, err := TrainParamServer(cfg, addr)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Round() != res.Rounds {
		t.Errorf("server completed %d rounds, client reports %d", ps.Round(), res.Rounds)
	}
	first, last := res.LossTrace[0], res.LossTrace[len(res.LossTrace)-1]
	if last >= first || last > 0.35 {
		t.Errorf("PS-pattern training did not converge: %g -> %g", first, last)
	}
	// The PS pattern's signature: exactly one push per worker per round.
	pushes, _ := ps.Stats()
	if pushes != int64(res.Rounds*cfg.Workers) {
		t.Errorf("pushes = %d, want %d", pushes, res.Rounds*cfg.Workers)
	}
}

func TestBothPatternsReachSimilarLoss(t *testing.T) {
	// Same data, same worker count, same hyperparameters: the two wire
	// patterns implement the same BSP algorithm, so final losses must land
	// in the same neighborhood (batch orders differ, exact equality is not
	// expected).
	cfg := baseConfig(t)

	srv := objstore.NewServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	objRes, err := TrainObjectStore(cfg, objstore.NewClient(ts.URL))
	if err != nil {
		t.Fatal(err)
	}

	ps, _ := psnet.NewServer(cfg.Workers, cfg.LR)
	addr, _ := ps.Listen("127.0.0.1:0")
	defer ps.Close()
	psRes, err := TrainParamServer(cfg, addr)
	if err != nil {
		t.Fatal(err)
	}

	a := objRes.LossTrace[len(objRes.LossTrace)-1]
	b := psRes.LossTrace[len(psRes.LossTrace)-1]
	if math.Abs(a-b) > 0.15 {
		t.Errorf("patterns diverged: objstore %g vs param-server %g", a, b)
	}
}

func TestObjectStoreSingleWorker(t *testing.T) {
	srv := objstore.NewServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cfg := baseConfig(t)
	cfg.Workers = 1
	res, err := TrainObjectStore(cfg, objstore.NewClient(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if res.LossTrace[len(res.LossTrace)-1] >= res.LossTrace[0] {
		t.Error("single-worker run did not converge")
	}
}
