#!/bin/sh
# trace_check.sh — observability determinism gate.
#
# Runs one small figure through cebench twice with -trace-out/-metrics-out:
# fully serial, then on an 8-way worker pool. The exported trace and metrics
# files must be byte-identical across the two runs (sim-clock timestamps +
# sorted-scope export make the files independent of goroutine scheduling),
# and stdout must be byte-identical both between them and against a third
# run with tracing off entirely (collection must not perturb results).
set -eu

cd "$(dirname "$0")/.."

fig=fig21b
seed=2023
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/cebench" ./cmd/cebench

echo "== trace-check: $fig serial"
"$tmp/cebench" -seed "$seed" -parallel 1 \
	-trace-out "$tmp/trace1.json" -metrics-out "$tmp/metrics1.json" \
	"$fig" >"$tmp/out1.txt" 2>/dev/null

echo "== trace-check: $fig parallel=8"
"$tmp/cebench" -seed "$seed" -parallel 8 \
	-trace-out "$tmp/trace2.json" -metrics-out "$tmp/metrics2.json" \
	"$fig" >"$tmp/out2.txt" 2>/dev/null

echo "== trace-check: $fig tracing off"
"$tmp/cebench" -seed "$seed" -parallel 8 "$fig" >"$tmp/out3.txt" 2>/dev/null

cmp "$tmp/trace1.json" "$tmp/trace2.json" || {
	echo "trace-check: trace bytes differ between -parallel 1 and 8" >&2
	exit 1
}
cmp "$tmp/metrics1.json" "$tmp/metrics2.json" || {
	echo "trace-check: metrics bytes differ between -parallel 1 and 8" >&2
	exit 1
}
cmp "$tmp/out1.txt" "$tmp/out2.txt" || {
	echo "trace-check: stdout differs between -parallel 1 and 8" >&2
	exit 1
}
cmp "$tmp/out1.txt" "$tmp/out3.txt" || {
	echo "trace-check: stdout differs with tracing on vs off" >&2
	exit 1
}

echo "trace-check OK"
