package obs

import (
	"sort"
	"sync"
)

// Metrics is a registry of named counters, gauges and fixed-bucket
// histograms. Snapshots are emitted in sorted-key order so serialized
// metrics are byte-identical run to run regardless of registration order.
// All methods are no-ops on a nil receiver.
type Metrics struct {
	mu     sync.Mutex
	counts map[string]float64
	gauges map[string]float64
	hists  map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counts: make(map[string]float64),
		gauges: make(map[string]float64),
		hists:  make(map[string]*Histogram),
	}
}

// Enabled reports whether the registry records anything.
func (m *Metrics) Enabled() bool { return m != nil }

// Add increments counter name by v.
func (m *Metrics) Add(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counts[name] += v
	m.mu.Unlock()
}

// Inc increments counter name by 1.
func (m *Metrics) Inc(name string) { m.Add(name, 1) }

// Set sets gauge name to v (last write wins).
func (m *Metrics) Set(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// SetMax raises gauge name to v if v exceeds its current value (high-water
// mark; an unset gauge takes v).
func (m *Metrics) SetMax(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if cur, ok := m.gauges[name]; !ok || v > cur {
		m.gauges[name] = v
	}
	m.mu.Unlock()
}

// Observe records v into histogram name. The histogram's bucket upper
// bounds are fixed on first use: callers that need specific buckets must
// call DefineHistogram first; otherwise defaultBuckets apply.
func (m *Metrics) Observe(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = newHistogram(defaultBuckets)
		m.hists[name] = h
	}
	h.observe(v)
	m.mu.Unlock()
}

// DefineHistogram pre-registers histogram name with the given sorted bucket
// upper bounds (an implicit +Inf bucket is appended). Redefining an existing
// histogram is a no-op so counts are never silently dropped.
func (m *Metrics) DefineHistogram(name string, bounds []float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if _, ok := m.hists[name]; !ok {
		m.hists[name] = newHistogram(bounds)
	}
	m.mu.Unlock()
}

// defaultBuckets cover the second-to-hours span the simulator operates in.
var defaultBuckets = []float64{0.001, 0.01, 0.1, 1, 10, 60, 300, 1800, 3600, 14400}

// Histogram is a fixed-bucket histogram: counts[i] tallies observations
// v <= bounds[i]; the final slot counts overflow (+Inf bucket). It wraps
// the standalone Hist value so the bucket semantics live in one place.
type Histogram struct {
	h Hist
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{h: *NewHist(bounds)}
}

func (h *Histogram) observe(v float64) { h.h.Observe(v) }

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Total  uint64    `json:"total"`
}

// Snapshot is a deterministic point-in-time copy of the registry: each
// section's entries sorted by name.
type Snapshot struct {
	Counters   []NamedValue `json:"counters"`
	Gauges     []NamedValue `json:"gauges"`
	Histograms []NamedHist  `json:"histograms"`
}

// NamedValue is one counter or gauge in a snapshot.
type NamedValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// NamedHist is one histogram in a snapshot.
type NamedHist struct {
	Name string       `json:"name"`
	Hist HistSnapshot `json:"hist"`
}

// Snapshot returns the registry's current contents in sorted-name order.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var s Snapshot
	for _, k := range sortedKeys(m.counts) {
		s.Counters = append(s.Counters, NamedValue{Name: k, Value: m.counts[k]})
	}
	for _, k := range sortedKeys(m.gauges) {
		s.Gauges = append(s.Gauges, NamedValue{Name: k, Value: m.gauges[k]})
	}
	names := make([]string, 0, len(m.hists))
	for k := range m.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		s.Histograms = append(s.Histograms, NamedHist{Name: k, Hist: m.hists[k].h.Snapshot()})
	}
	return s
}

// Counter returns the current value of counter name (0 if absent).
func (m *Metrics) Counter(name string) float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[name]
}

// Gauge returns the current value of gauge name (0 if absent).
func (m *Metrics) Gauge(name string) float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
