package predictor

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// groundTruthEpochs runs the engine until target and returns the epoch count.
func groundTruthEpochs(m *workload.Model, seed uint64, target float64) int {
	eng := m.NewEngine(workload.Hyperparams{LR: m.DefaultLR}, seed)
	for e := 1; e <= 10000; e++ {
		if eng.NextEpoch() <= target {
			return e
		}
	}
	return 10000
}

func TestOfflinePredictsRightOrderOfMagnitude(t *testing.T) {
	m := workload.MobileNet()
	truth := groundTruthEpochs(m, 100, m.TargetLoss)
	pred := NewOffline(m).PredictEpochs(m.TargetLoss, 1)
	if pred < truth/5 || pred > truth*5 {
		t.Errorf("offline prediction %d wildly off truth %d", pred, truth)
	}
}

func TestOfflineWorksForRealModels(t *testing.T) {
	m := workload.LRHiggs()
	pred := NewOffline(m).PredictEpochs(m.TargetLoss, 2)
	if pred < 1 || pred > 100000 {
		t.Errorf("offline prediction %d out of sane range", pred)
	}
}

func TestOfflinePredictionsVaryAcrossSeeds(t *testing.T) {
	m := workload.ResNet50()
	o := NewOffline(m)
	a, b := o.PredictEpochs(m.TargetLoss, 1), o.PredictEpochs(m.TargetLoss, 99)
	if a == b {
		t.Skip("identical predictions possible but unlikely; rerun with new seeds")
	}
}

func TestOnlineNotReadyEarly(t *testing.T) {
	o := NewOnline()
	o.Observe(1, 1.0)
	o.Observe(2, 0.8)
	if o.Ready() {
		t.Error("2 observations should not be enough")
	}
	if _, ok := o.PredictTotalEpochs(0.5); ok {
		t.Error("prediction before ready should fail")
	}
}

func TestOnlineRecoversCurve(t *testing.T) {
	m := workload.MobileNet()
	truth := groundTruthEpochs(m, 7, m.TargetLoss)
	eng := m.NewCurveEngine(workload.Hyperparams{LR: m.DefaultLR}, 7)
	o := NewOnline()
	var pred int
	for e := 1; e <= truth/2+2; e++ {
		o.Observe(e, eng.NextEpoch())
	}
	pred, ok := o.PredictTotalEpochs(m.TargetLoss)
	if !ok {
		t.Fatal("online prediction unavailable at half horizon")
	}
	relErr := math.Abs(float64(pred-truth)) / float64(truth)
	if relErr > 0.5 {
		t.Errorf("online prediction %d vs truth %d (err %.0f%%)", pred, truth, relErr*100)
	}
}

func TestOnlineErrorShrinksWithObservations(t *testing.T) {
	// Fig. 4(b): the online error decreases as training progresses.
	// Average over several seeds to wash out noise.
	m := workload.ResNet50()
	const seeds = 8
	errAt := func(fraction float64) float64 {
		var sum float64
		for s := uint64(0); s < seeds; s++ {
			truth := groundTruthEpochs(m, 200+s, m.TargetLoss)
			eng := m.NewCurveEngine(workload.Hyperparams{LR: m.DefaultLR}, 200+s)
			o := NewOnline()
			upto := int(float64(truth) * fraction)
			if upto < 4 {
				upto = 4
			}
			for e := 1; e <= upto; e++ {
				o.Observe(e, eng.NextEpoch())
			}
			if pred, ok := o.PredictTotalEpochs(m.TargetLoss); ok {
				sum += math.Abs(float64(pred-truth)) / float64(truth)
			} else {
				sum += 1
			}
		}
		return sum / seeds
	}
	early, late := errAt(0.2), errAt(0.8)
	if late >= early {
		t.Errorf("online error should shrink: early %.3f, late %.3f", early, late)
	}
	if late > 0.25 {
		t.Errorf("late online error %.3f too high; paper reports ~5%%", late)
	}
}

func TestOnlineBeatsOfflineOnAverage(t *testing.T) {
	// Finding 2: online prediction is more accurate than offline sampling.
	m := workload.MobileNet()
	const seeds = 10
	var offErr, onErr float64
	for s := uint64(0); s < seeds; s++ {
		truth := groundTruthEpochs(m, 300+s, m.TargetLoss)
		off := NewOffline(m).PredictEpochs(m.TargetLoss, 300+s)
		offErr += math.Abs(float64(off-truth)) / float64(truth)

		eng := m.NewCurveEngine(workload.Hyperparams{LR: m.DefaultLR}, 300+s)
		o := NewOnline()
		for e := 1; e <= truth*3/4; e++ {
			o.Observe(e, eng.NextEpoch())
		}
		if pred, ok := o.PredictTotalEpochs(m.TargetLoss); ok {
			onErr += math.Abs(float64(pred-truth)) / float64(truth)
		} else {
			onErr += 1
		}
	}
	if onErr >= offErr {
		t.Errorf("online total error %.3f should beat offline %.3f", onErr/seeds, offErr/seeds)
	}
}

func TestPredictTotalNeverBelowObserved(t *testing.T) {
	o := NewOnline()
	// A curve that has already passed the target.
	losses := []float64{1.0, 0.5, 0.3, 0.2, 0.15, 0.12}
	for i, l := range losses {
		o.Observe(i+1, l)
	}
	total, ok := o.PredictTotalEpochs(0.5)
	if !ok {
		t.Fatal("prediction should be available")
	}
	if total < len(losses) {
		t.Errorf("total %d below observed %d", total, len(losses))
	}
}

func TestPredictRemaining(t *testing.T) {
	m := workload.BERT()
	eng := m.NewCurveEngine(workload.Hyperparams{LR: m.DefaultLR}, 5)
	o := NewOnline()
	for e := 1; e <= 8; e++ {
		o.Observe(e, eng.NextEpoch())
	}
	total, ok1 := o.PredictTotalEpochs(m.TargetLoss)
	rem, ok2 := o.PredictRemaining(m.TargetLoss)
	if !ok1 || !ok2 {
		t.Fatal("predictions unavailable")
	}
	if rem != total-8 {
		t.Errorf("remaining %d != total %d - 8", rem, total)
	}
}

func TestUnreachableTargetReported(t *testing.T) {
	o := NewOnline()
	// Flat losses: floor ~0.5, target 0.1 unreachable.
	for e := 1; e <= 10; e++ {
		o.Observe(e, 0.5+0.001/float64(e))
	}
	if _, ok := o.PredictTotalEpochs(0.1); ok {
		t.Error("target below the fitted floor should be unreachable")
	}
}

func TestWindowLimitsFit(t *testing.T) {
	o := NewOnline()
	o.Window = 5
	for e := 1; e <= 20; e++ {
		o.Observe(e, 1.0/float64(e)+0.2)
	}
	if _, ok := o.Curve(); !ok {
		t.Fatal("windowed fit failed")
	}
}

func TestCurveCaching(t *testing.T) {
	o := NewOnline()
	for e := 1; e <= 6; e++ {
		o.Observe(e, 1.0/float64(e)+0.3)
	}
	p1, ok := o.Curve()
	if !ok {
		t.Fatal("fit failed")
	}
	p2, _ := o.Curve()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Error("cached curve changed without new observations")
		}
	}
	o.Observe(7, 0.44)
	p3, _ := o.Curve()
	same := true
	for i := range p1 {
		if p1[i] != p3[i] {
			same = false
		}
	}
	if same {
		t.Error("new observation should refresh the fit")
	}
}
