package trainer

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cost"
	"repro/internal/fault"
	"repro/internal/platform"
	"repro/internal/workload"
)

// faultJob runs a noiseless MobileNet job under a fault schedule so every
// divergence from a clean run is attributable to the schedule alone.
func faultJob(t *testing.T, sched *fault.Schedule, seed uint64, maxEpochs int, ctrl Controller) (*Result, *Runner) {
	t.Helper()
	w := workload.MobileNet()
	r := NewRunner(seed)
	r.Noise = NoNoise()
	res, err := r.Run(Config{
		Workload:   w,
		Engine:     w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, seed),
		Alloc:      cost.Allocation{N: 10, MemMB: 1769, Storage: platform.S3},
		MaxEpochs:  maxEpochs,
		Faults:     sched,
		Controller: ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, r
}

func TestAttachedEmptyScheduleIsBitIdentical(t *testing.T) {
	// The acceptance bar for the fault subsystem: attaching an empty
	// schedule must not perturb a single bit — the dice-roll model still
	// runs, every rng draw lands identically.
	base, err := failureJob(0.01, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.MobileNet()
	r := NewRunner(2)
	r.Noise.FailureRate = 0.01
	attached, err := r.Run(Config{
		Workload:   w,
		Engine:     w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 2),
		Alloc:      cost.Allocation{N: 10, MemMB: 1769, Storage: platform.S3},
		TargetLoss: w.TargetLoss,
		MaxEpochs:  400,
		Faults:     fault.MustNew(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, attached) {
		t.Errorf("empty schedule perturbed the run:\nbase     %+v\nattached %+v", base, attached)
	}
}

func TestScheduledKillAbortsAndBills(t *testing.T) {
	clean, rClean := faultJob(t, nil, 4, 5, nil)
	faulty, rFaulty := faultJob(t, fault.MustNew(fault.KillAt(0, 2)), 4, 5, nil)

	if faulty.Failures != 1 {
		t.Fatalf("Failures = %d, want 1 (one kill event)", faulty.Failures)
	}
	if faulty.Epochs != clean.Epochs {
		t.Fatalf("epochs diverged: %d vs %d", faulty.Epochs, clean.Epochs)
	}
	if faulty.FailureTime <= 0 || faulty.JCT <= clean.JCT {
		t.Errorf("kill did not cost wall time: failure %g, JCT %g vs %g",
			faulty.FailureTime, faulty.JCT, clean.JCT)
	}
	// The two killed sandboxes re-invoked against the real platform.
	mc, mf := rClean.Compute().Meter(), rFaulty.Compute().Meter()
	if mf.Invocations != mc.Invocations+2 {
		t.Errorf("invocations = %d, want %d (clean) + 2 re-invocations", mf.Invocations, mc.Invocations)
	}
	// The kill landed before the epoch began (At=0), so nothing was wasted:
	// the whole failure time is the two replacements' recovery run, and the
	// cost delta is exactly their recovery compute plus invoke fees.
	perRecover := rFaulty.Prices.ComputeOnlyCost(faulty.FailureTime, 1769)
	want := 2*perRecover + 2*rFaulty.Prices.FunctionInvoke
	got := faulty.TotalCost - clean.TotalCost
	if diff := math.Abs(got - want); diff > 1e-9*want {
		t.Errorf("kill cost delta = %g, want %g", got, want)
	}
	if mf.ComputeCost <= mc.ComputeCost {
		t.Error("platform meter did not charge the recovery compute")
	}
}

func TestScheduledStragglerAndBrownoutInflateEpochs(t *testing.T) {
	clean, _ := faultJob(t, nil, 4, 3, nil)
	sched := fault.MustNew(
		fault.StragglerWindow(0, 1e9, 2),
		fault.BrownoutWindow(0, 1e9, 3, 0),
	)
	slow, _ := faultJob(t, sched, 4, 3, nil)
	if got, want := slow.ComputeTime, 2*clean.ComputeTime; math.Abs(got-want) > 1e-12*want {
		t.Errorf("straggler ComputeTime = %g, want exactly 2x clean %g", got, clean.ComputeTime)
	}
	if got, want := slow.SyncTime, 3*clean.SyncTime; math.Abs(got-want) > 1e-12*want {
		t.Errorf("brownout SyncTime = %g, want exactly 3x clean %g", got, clean.SyncTime)
	}
	// The controller path: the inflation arrives through ordinary epoch
	// observations — the trace records the inflated components.
	if slow.Trace[0].ComputeTime <= clean.Trace[0].ComputeTime {
		t.Error("per-epoch trace does not show the inflation")
	}
}

func TestBrownoutExhaustionDegradesGracefully(t *testing.T) {
	// Error rate 1: every checkpoint attempt fails, the default policy's
	// four attempts back off and then the job degrades — explicitly, with
	// the flag set, not with a panic.
	sched := fault.MustNew(fault.BrownoutWindow(0, 1e9, 1, 1))
	res, _ := faultJob(t, sched, 4, 3, nil)
	if !res.Degraded {
		t.Fatal("retry exhaustion did not set Degraded")
	}
	if want := fault.DefaultRetryPolicy().MaxAttempts; res.StorageRetries != want {
		t.Errorf("StorageRetries = %d, want %d (one exhausted op, then checkpoint-less)",
			res.StorageRetries, want)
	}
	if res.Epochs != 3 {
		t.Errorf("degraded job stopped early: %d epochs", res.Epochs)
	}
	// Backoff time landed on the job clock as overhead.
	clean, _ := faultJob(t, nil, 4, 3, nil)
	if res.OverheadTime <= clean.OverheadTime {
		t.Error("retry backoff not accounted as overhead")
	}
}

func TestBrownoutRetrySucceedsBelowExhaustion(t *testing.T) {
	// Error rate 0.5: the accumulator gate fails every second attempt, so
	// each checkpoint needs one retry but never exhausts the policy.
	sched := fault.MustNew(fault.BrownoutWindow(0, 1e9, 1, 0.5))
	res, _ := faultJob(t, sched, 4, 4, nil)
	if res.Degraded {
		t.Fatal("rate-0.5 brownout should not exhaust the retry policy")
	}
	if res.StorageRetries == 0 {
		t.Error("no retries recorded under a failing brownout")
	}
}

func TestKillDuringDelayedRestartOverlap(t *testing.T) {
	next := cost.Allocation{N: 4, MemMB: 1769, Storage: platform.S3}
	ctrl := func(epoch int, loss float64, elapsed, spent float64) Decision {
		if epoch == 1 {
			return Decision{NewAlloc: &next, Delayed: true}
		}
		return Decision{}
	}
	// Probe run: learn when epoch 2 (the overlap window: old group runs,
	// new group starts up) begins and ends on this seed.
	w := workload.MobileNet()
	probe := NewRunner(4)
	probe.Noise = NoNoise()
	job, err := probe.StartJob(Config{
		Workload: w, Engine: w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 4),
		Alloc:      cost.Allocation{N: 10, MemMB: 1769, Storage: platform.S3},
		MaxEpochs:  4,
		Controller: ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Step(); err != nil {
		t.Fatal(err)
	}
	if job.st.pendingSwitch == nil {
		t.Fatal("probe: delayed switch not pending after epoch 1")
	}
	overlapStart := job.st.clock
	job.Finish()

	// Real run: kill two sandboxes shortly after the overlap window opens,
	// while both the old group and the pending delayed group are in flight.
	sched := fault.MustNew(fault.KillAt(overlapStart+0.05, 2))
	res, r := faultJob(t, sched, 4, 4, ctrl)
	if res.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", res.Failures)
	}
	if res.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1 (the delayed takeover happened)", res.Restarts)
	}
	// Group bookkeeping survived the kill-during-overlap: every admitted
	// sandbox was either killed+replaced or released, no panic, none leaked.
	if pf := r.platformOf(); pf != nil && pf.InFlight() != 0 {
		t.Errorf("in flight = %d after Finish, want 0", pf.InFlight())
	}
}

func TestFaultScheduleRunsAreDeterministic(t *testing.T) {
	sched := func() *fault.Schedule {
		return fault.MustNew(
			fault.KillAt(40, 1),
			fault.ReclaimAt(10, 2),
			fault.StragglerWindow(20, 90, 1.5),
			fault.BrownoutWindow(50, 120, 2, 0.25),
			fault.ColdSpikeWindow(0, 200, 3),
		)
	}
	a, _ := faultJob(t, sched(), 9, 6, nil)
	b, _ := faultJob(t, sched(), 9, 6, nil)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same schedule + seed diverged:\n%+v\n%+v", a, b)
	}
	if a.Failures == 0 {
		t.Error("schedule injected no failures")
	}
}
