package cost

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

// TestEstimatesFiniteAndPositive: every feasible allocation of every
// evaluated model yields finite, positive per-epoch estimates.
func TestEstimatesFiniteAndPositive(t *testing.T) {
	for _, w := range workload.Evaluated() {
		m := NewModel(w)
		for _, p := range m.Enumerate(DefaultGrid()) {
			for name, v := range map[string]float64{
				"EpochTime":   p.Time,
				"EpochCost":   p.Cost,
				"LoadTime":    m.LoadTime(p.Alloc),
				"ComputeTime": m.ComputeTime(p.Alloc),
				"SyncTime":    m.SyncTime(p.Alloc),
				"JobTime":     m.JobTime(p.Alloc, 10),
				"JobCost":     m.JobCost(p.Alloc, 10),
			} {
				if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s %v: %s = %g", w.Name, p.Alloc, name, v)
				}
			}
		}
	}
}

// TestJobTimeCostMonotoneInEpochs across random feasible allocations.
func TestJobTimeCostMonotoneInEpochs(t *testing.T) {
	m := NewModel(workload.MobileNet())
	pts := m.Enumerate(DefaultGrid())
	if err := quick.Check(func(pi uint8, e1, e2 uint8) bool {
		a := pts[int(pi)%len(pts)].Alloc
		lo := int(e1%50) + 1
		hi := lo + int(e2%50) + 1
		return m.JobTime(a, hi) > m.JobTime(a, lo) && m.JobCost(a, hi) > m.JobCost(a, lo)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestStragglerFactorMonotone: the BSP barrier penalty grows with n.
func TestStragglerFactorMonotone(t *testing.T) {
	m := NewModel(workload.LRHiggs())
	prev := m.stragglerFactor(1)
	if prev != 1 {
		t.Fatalf("stragglerFactor(1) = %g, want 1", prev)
	}
	for _, n := range []int{2, 5, 10, 50, 200, 1000} {
		f := m.stragglerFactor(n)
		if f <= prev || f > 1.5 {
			t.Fatalf("stragglerFactor(%d) = %g, want in (%g, 1.5]", n, f, prev)
		}
		prev = f
	}
}

// TestParetoIdempotent: applying Pareto to a front returns it unchanged.
func TestParetoIdempotent(t *testing.T) {
	m := NewModel(workload.BERT())
	front := m.ParetoSet(DefaultGrid())
	again := Pareto(front)
	if len(again) != len(front) {
		t.Fatalf("Pareto not idempotent: %d -> %d", len(front), len(again))
	}
	for i := range front {
		if front[i].Alloc != again[i].Alloc {
			t.Fatal("Pareto reordered an existing front")
		}
	}
}

// TestParetoSubsetOfInput: every front member is one of the inputs.
func TestParetoSubsetOfInput(t *testing.T) {
	m := NewModel(workload.SVMHiggs())
	all := m.Enumerate(DefaultGrid())
	seen := make(map[Allocation]bool, len(all))
	for _, p := range all {
		seen[p.Alloc] = true
	}
	for _, f := range Pareto(all) {
		if !seen[f.Alloc] {
			t.Fatalf("front member %v not in the input set", f.Alloc)
		}
	}
}

// TestSyncShareGrowsWithModelSize: for a fixed allocation, bigger models
// spend a larger fraction of the epoch synchronizing.
func TestSyncShareGrowsWithModelSize(t *testing.T) {
	a := Allocation{N: 10, MemMB: 4096}
	share := func(w *workload.Model) float64 {
		m := NewModel(w)
		aa := a
		aa.Storage = 0 // S3
		return m.SyncTime(aa) / m.EpochTime(aa)
	}
	mn, rn, bert := share(workload.MobileNet()), share(workload.ResNet50()), share(workload.BERT())
	if !(bert > rn && rn > mn) {
		t.Errorf("sync share ordering violated: MN %.2f RN %.2f BERT %.2f", mn, rn, bert)
	}
}

// TestStartupEstimateCoversProvisioning: manually-scaled storage dominates
// the startup estimate when its provisioning is slower than the cold start.
func TestStartupEstimateCoversProvisioning(t *testing.T) {
	m := NewModel(workload.MobileNet())
	s3 := m.StartupEstimate(Allocation{N: 10, MemMB: 1769, Storage: 0})
	vm := m.StartupEstimate(Allocation{N: 10, MemMB: 1769, Storage: 3})
	if vm <= s3 {
		t.Errorf("VM-PS startup %g should exceed S3's %g (provisioning)", vm, s3)
	}
}
